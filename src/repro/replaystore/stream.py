"""Lazy, shard-granular replay iteration.

:class:`ReplayStream` is the replay-time view of a
:class:`~repro.replaystore.store.ReplayStore`: it decodes shards on
demand (with a small LRU cache) and serves arbitrary sample subsets via
``gather`` — the protocol :class:`~repro.data.loaders.DataLoader` uses
for lazy sources.  Peak resident replay memory is therefore
``cache_shards`` decoded shards, never the full buffer.

:class:`ConcatReplaySource` splices dense new-task activations together
with a stream along the sample axis, so an NCL trainer sees one
``[T, N_new + N_replay, C]`` source whose batches are bit-for-bit what
``np.concatenate`` + fancy indexing would have produced — that identity
is what makes the store-backed training path reproduce the in-memory
path exactly.
"""

from __future__ import annotations

import os
from collections import OrderedDict

import numpy as np

from repro import obs
from repro.compression.subsample import TemporalSubsampleCodec
from repro.errors import StoreError
from repro.replaystore.store import INDEX_NAME, ReplayStore

__all__ = ["ReplayStream", "ConcatReplaySource"]


class ReplayStream:
    """On-demand decoded view over a store's samples.

    Parameters
    ----------
    store:
        The backing shard set.
    decompress:
        Mirror of :meth:`LatentReplayBuffer.materialize`'s flag:
        ``True`` zero-stuffs each shard back to
        ``meta.generated_timesteps`` (the SpikingLR cycle); ``False``
        serves stored frames directly (requires codec factor 1).
    cache_shards:
        Decoded shards held in the LRU cache — the replay-time memory
        bound, in units of one dense shard.
    """

    def __init__(
        self, store: ReplayStore, decompress: bool = False, cache_shards: int = 2
    ):
        if cache_shards < 1:
            raise StoreError(f"cache_shards must be >= 1, got {cache_shards}")
        if not decompress and store.meta.codec_factor != 1:
            raise StoreError(
                "cannot stream subsampled frames without decompression: "
                f"store codec factor is {store.meta.codec_factor}"
            )
        self.store = store
        self.decompress = bool(decompress)
        self.cache_shards = int(cache_shards)
        self._codec = TemporalSubsampleCodec(store.meta.codec_factor)
        self._cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self.shard_decodes = 0
        #: High-water mark of decoded bytes resident in the LRU cache —
        #: the measured peak replay memory (eviction happens *before*
        #: each decode is admitted, so residency never exceeds
        #: ``cache_shards`` decoded shards).
        self.peak_cache_bytes = 0
        # Snapshot of the shard table at construction: the stream's
        # index->shard mapping and decode cache are only valid against
        # this exact table, so a mutated store must fail loudly rather
        # than serve stale or misrouted samples.
        self._signature = [(s.file, s.num_samples) for s in store.shards]
        self._num_samples = store.num_samples
        # Sample index -> (shard, column) without touching payloads.
        bounds = np.cumsum([n for _, n in self._signature])
        self._bounds = np.concatenate([[0], bounds]).astype(np.int64)
        # Every index commit is an atomic rename, so the index inode
        # identifies the snapshot exactly: a cross-handle mutation (a
        # compaction in another thread or process) is one stat away.
        stat = os.stat(store.root / INDEX_NAME)
        self._index_id = (stat.st_dev, stat.st_ino)
        # Crash-safe reader pin: while held, mutations tombstone this
        # generation's shard files instead of unlinking them, so an
        # in-flight gather finishes against its snapshot and the *next*
        # snapshot check reports the mutation cleanly.
        self._pin = store.pin_reader()

    def close(self) -> None:
        """Release the reader pin (idempotent; ``__del__`` backstops).

        After closing, mutations may reclaim this snapshot's shard
        files immediately; the stream itself remains usable until the
        store actually changes.
        """
        pin = getattr(self, "_pin", None)
        if pin is not None:
            pin.release()

    def __del__(self):
        self.close()

    def __enter__(self) -> "ReplayStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_not_stale(self) -> None:
        current = [(s.file, s.num_samples) for s in self.store.shards]
        if current != self._signature:
            raise StoreError(
                "store was mutated (append/compact) after this ReplayStream "
                "was created; open a fresh stream"
            )
        try:
            stat = os.stat(self.store.root / INDEX_NAME)
        except OSError as error:
            raise StoreError(
                f"store was mutated: index vanished from {self.store.root} "
                f"after this ReplayStream was created: {error}"
            ) from error
        if (stat.st_dev, stat.st_ino) != self._index_id:
            raise StoreError(
                "store was mutated by another handle after this ReplayStream "
                "was created; open a fresh stream"
            )

    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        """Sample count pinned when the stream was opened."""
        return self._num_samples

    @property
    def timesteps(self) -> int:
        """Frames per served sample (post-decompression if enabled)."""
        if self.decompress:
            return self.store.meta.generated_timesteps
        return self.store.meta.stored_frames

    @property
    def num_channels(self) -> int:
        """Channels per sample, from the store metadata."""
        return self.store.meta.num_channels

    @property
    def shape(self) -> tuple[int, int, int]:
        """Logical ``[T, n, C]`` shape of the streamed tensor."""
        return (self.timesteps, self.num_samples, self.num_channels)

    @property
    def labels(self) -> np.ndarray:
        """Labels of the pinned snapshot (stale-stream checked)."""
        self._check_not_stale()
        return self.store.labels

    # ------------------------------------------------------------------
    def _decoded(self, shard_id: int) -> np.ndarray:
        """Decoded (and optionally decompressed) shard, via the LRU."""
        if shard_id in self._cache:
            self._cache.move_to_end(shard_id)
            obs.count("store.cache_hits")
            return self._cache[shard_id]
        obs.count("store.cache_misses")
        self._check_not_stale()
        while len(self._cache) >= self.cache_shards:
            self._cache.popitem(last=False)
        raster, _ = self.store.read_shard(shard_id)
        if self.decompress:
            raster = self._codec.decompress(
                raster, self.store.meta.generated_timesteps
            )
        self.shard_decodes += 1
        self._cache[shard_id] = raster
        resident = sum(int(r.nbytes) for r in self._cache.values())
        if resident > self.peak_cache_bytes:
            self.peak_cache_bytes = resident
        return raster

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Decode the requested samples into a ``[T, k, C]`` raster.

        Output column ``j`` is sample ``indices[j]``; duplicate and
        unsorted indices behave exactly like numpy fancy indexing on the
        dense buffer.  Shards are decoded once per call each.
        """
        self._check_not_stale()
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise StoreError(f"indices must be 1-D, got shape {indices.shape}")
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.num_samples
        ):
            raise StoreError(
                f"indices out of range [0, {self.num_samples}) "
                f"(got [{indices.min()}, {indices.max()}])"
            )
        out = np.empty(
            (self.timesteps, indices.size, self.num_channels), dtype=np.float32
        )
        shard_of = np.searchsorted(self._bounds, indices, side="right") - 1
        # Serve cached shards first: a cold decode evicts the LRU tail,
        # so touching warm shards before any eviction can reach them
        # keeps a prefetched (or recently used) shard from being thrown
        # away unread.  Output is written by mask position, so the
        # processing order never changes the result.
        needed = np.unique(shard_of)
        ordered = sorted(needed, key=lambda s: (int(s) not in self._cache, s))
        with obs.span(
            "store.gather", category="store", samples=int(indices.size), shards=len(ordered)
        ):
            for shard_id in ordered:
                raster = self._decoded(int(shard_id))
                mask = shard_of == shard_id
                cols = indices[mask] - self._bounds[shard_id]
                out[:, mask, :] = raster[:, cols, :]
        return out

    def __iter__(self):
        """Yield ``(raster, labels)`` shard by shard, in storage order."""
        self._check_not_stale()
        for shard_id in range(len(self._signature)):
            raster = self._decoded(shard_id)
            labels = np.asarray(self.store.shards[shard_id].labels, dtype=np.int64)
            yield raster, labels

    def materialize(self) -> np.ndarray:
        """Densify the whole stream (tests/small stores only)."""
        return self.gather(np.arange(self.num_samples))


class ConcatReplaySource:
    """Dense new-task activations + a lazy replay stream, sample-axis.

    Quacks like the ``[T, N, C]`` array that
    ``np.concatenate([dense, replay], axis=1)`` would build, but the
    replay half stays on disk until a batch actually touches it.
    """

    def __init__(self, dense: np.ndarray, stream: ReplayStream):
        dense = np.asarray(dense, dtype=np.float32)
        if dense.ndim != 3:
            raise StoreError(f"dense part must be [T, N, C], got {dense.shape}")
        if dense.shape[0] != stream.timesteps:
            raise StoreError(
                f"dense part has {dense.shape[0]} frames, stream serves "
                f"{stream.timesteps}"
            )
        if dense.shape[2] != stream.num_channels:
            raise StoreError(
                f"dense part has {dense.shape[2]} channels, stream serves "
                f"{stream.num_channels}"
            )
        self.dense = dense
        self.stream = stream

    @property
    def shape(self) -> tuple[int, int, int]:
        """Combined ``[T, n, C]`` shape of dense plus lazy samples."""
        return (
            self.dense.shape[0],
            self.dense.shape[1] + self.stream.num_samples,
            self.dense.shape[2],
        )

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Gather ``[T, k, C]`` columns, routing each index to its source."""
        indices = np.asarray(indices, dtype=np.int64)
        split = self.dense.shape[1]
        total = self.shape[1]
        if indices.size and (indices.min() < 0 or indices.max() >= total):
            raise StoreError(
                f"indices out of range [0, {total}) "
                f"(got [{indices.min()}, {indices.max()}])"
            )
        out = np.empty(
            (self.shape[0], indices.size, self.shape[2]), dtype=np.float32
        )
        from_dense = indices < split
        out[:, from_dense, :] = self.dense[:, indices[from_dense], :]
        if np.any(~from_dense):
            out[:, ~from_dense, :] = self.stream.gather(indices[~from_dense] - split)
        return out

    def prefetch(self, indices: np.ndarray) -> int:
        """Advise the replay half that ``indices`` are needed soon.

        Forwarded to the stream's ``prefetch`` when it has one (e.g. a
        :class:`~repro.replaystore.prefetch.PrefetchingStream`); the
        dense half needs no warm-up.  Returns the number of shard decode
        requests actually queued (0 when the stream cannot prefetch).
        """
        hook = getattr(self.stream, "prefetch", None)
        if hook is None:
            return 0
        indices = np.asarray(indices, dtype=np.int64)
        # Advice is advisory, but bogus advice is not harmless: an
        # out-of-range index would map to a nonexistent shard id and
        # poison the prefetch queue.  Apply the same bounds gather
        # enforces, dropping (not raising — callers speculate) the
        # invalid entries.
        bogus = (indices < 0) | (indices >= self.shape[1])
        if np.any(bogus):
            obs.count("prefetch.bogus_advice", int(np.count_nonzero(bogus)))
            indices = indices[~bogus]
        replay = indices[indices >= self.dense.shape[1]] - self.dense.shape[1]
        if replay.size == 0:
            return 0
        return int(hook(replay))
