"""Command-line interface: reproduce paper figures from the shell.

Usage::

    python -m repro list                      # figures and scales
    python -m repro run fig11 --scale bench   # reproduce one figure
    python -m repro run all --scale ci        # everything, quickly
    python -m repro info                      # version + inventory
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Replay4NCL (DAC 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments and scales")
    sub.add_parser("info", help="print version and system inventory")

    run = sub.add_parser("run", help="reproduce a paper figure/table")
    run.add_argument("experiment", help="figure id (fig1a, fig2, ..., headline) or 'all'")
    run.add_argument("--scale", default="bench", help="ci | bench | paper")
    run.add_argument("--save-dir", default=None, help="write <id>.json/.csv here")
    run.add_argument("--no-plot", action="store_true", help="omit ASCII plots")

    compare = sub.add_parser(
        "compare", help="paper-vs-measured table from saved benchmark results"
    )
    compare.add_argument(
        "--results", default="benchmarks/results",
        help="directory holding <figure>.json results",
    )
    return parser


def _cmd_list() -> int:
    from repro.eval import experiments
    from repro.eval.scale import SCALES, get_scale

    print("experiments:")
    for name in experiments.available_experiments():
        print(f"  {name}")
    print("scales:")
    for name in sorted(SCALES):
        print(f"  {get_scale(name).description}")
    return 0


def _cmd_info() -> int:
    import repro

    print(f"repro {repro.__version__} — Replay4NCL (DAC 2025) reproduction")
    print("packages: autograd, snn, data, compression, training, core, hw, eval")
    print("see DESIGN.md for the system inventory and EXPERIMENTS.md for results")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.eval import experiments

    if args.experiment == "all":
        names = experiments.available_experiments()
    else:
        names = [args.experiment]
    for name in names:
        result = experiments.run(name, scale=args.scale)
        print(result.format_text(plot=not args.no_plot))
        print()
        if args.save_dir:
            json_path, csv_path = result.save(args.save_dir)
            print(f"saved {json_path} and {csv_path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.eval.paper_targets import compare_to_paper, format_comparison

    rows = compare_to_paper(args.results)
    print(format_comparison(rows))
    if all(row["measured"] is None for row in rows):
        print(
            f"\nno results found in {args.results!r} — run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "info":
            return _cmd_info()
        if args.command == "compare":
            return _cmd_compare(args)
        return _cmd_run(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
