"""Command-line interface: reproduce paper figures from the shell.

Usage::

    python -m repro list                      # figures, scales, scenarios, methods
    python -m repro run fig11 --scale bench   # reproduce one figure
    python -m repro run all --scale ci        # everything, quickly
    python -m repro scenario list             # registered scenarios/methods
    python -m repro scenario run sequential --scale ci   # CL metrics for one run
    python -m repro scenario run task-incremental --steps 2   # task-IL (masked readout)
    python -m repro info                      # version + inventory
    python -m repro backends                  # kernel backend table
    python -m repro store stats runs/buffer   # replay-store maintenance
    python -m repro store federate runs/seq   # compose per-task stores
    python -m repro trace summary runs/trace.jsonl   # top spans + metrics
    python -m repro trace export runs/trace.jsonl    # Chrome/Perfetto JSON
    python -m repro lint src/repro            # invariant linter (RPL rules)
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Replay4NCL (DAC 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments and scales")
    sub.add_parser("info", help="print version and system inventory")
    sub.add_parser(
        "backends", help="kernel backend availability and selection table"
    )

    run = sub.add_parser("run", help="reproduce a paper figure/table")
    run.add_argument("experiment", help="figure id (fig1a, fig2, ..., headline) or 'all'")
    run.add_argument("--scale", default="bench", help="ci | bench | paper")
    run.add_argument("--save-dir", default=None, help="write <id>.json/.csv here")
    run.add_argument("--no-plot", action="store_true", help="omit ASCII plots")

    scenario = sub.add_parser(
        "scenario", help="scenario-first continual-learning runs"
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    scenario_sub.add_parser("list", help="registered scenarios and methods")
    scenario_run = scenario_sub.add_parser(
        "run", help="run one scenario end-to-end and print its CL metrics"
    )
    scenario_run.add_argument(
        "name", help="scenario name (see `repro scenario list`)"
    )
    scenario_run.add_argument(
        "--method", default="replay4ncl",
        help="NCL method registry name (default replay4ncl)",
    )
    scenario_run.add_argument("--scale", default="ci", help="ci | bench | paper")
    scenario_run.add_argument(
        "--steps", type=int, default=None,
        help="override the scenario's steps_count (multi-step scenarios "
        "such as sequential/task-incremental only)",
    )
    scenario_run.add_argument(
        "--store-dir", default=None,
        help="persist replay via a store federation at this directory "
        "(default: dense in-memory replay)",
    )
    scenario_run.add_argument(
        "--shard-samples", type=int, default=None,
        help="samples per shard on the store-backed path",
    )
    scenario_run.add_argument(
        "--overwrite", action="store_true",
        help="replace an existing federation at --store-dir",
    )
    scenario_run.add_argument(
        "--budget-bytes", type=int, default=None,
        help="global federation byte budget across all steps' stores",
    )
    scenario_run.add_argument(
        "--with", dest="combinators", action="append", default=None,
        metavar="COMBINATOR",
        help="wrap the scenario in a combinator (drift | blur | "
        "task-masks | class-repetition | label-noise); repeatable, "
        "applied inside-out in the order given",
    )
    scenario_run.add_argument(
        "--checkpoint-dir", default=None,
        help="persist a resumable checkpoint here after every step",
    )
    scenario_run.add_argument(
        "--resume", action="store_true",
        help="continue from the checkpoint at --checkpoint-dir "
        "(bitwise-identical to an uninterrupted run)",
    )
    scenario_run.add_argument(
        "--stop-after", type=int, default=None, metavar="K",
        help="stop after K steps (simulates an interrupted stream; "
        "pair with --checkpoint-dir, then --resume to finish)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the invariant linter (AST rules RPL001-RPL008; exit 2 "
        "on findings)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files/directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is the versioned findings schema CI "
        "archives)",
    )

    trace = sub.add_parser(
        "trace", help="summarize or convert recorded trace files (REPRO_TRACE)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary", help="top spans + metric table of a trace JSONL file"
    )
    trace_summary.add_argument("path", help="trace JSONL file (REPRO_TRACE=<path>)")
    trace_summary.add_argument(
        "--top", type=int, default=10, help="span names to show (default 10)"
    )
    trace_summary.add_argument(
        "--tree", action="store_true", help="also print the span tree"
    )
    trace_export = trace_sub.add_parser(
        "export",
        help="convert a trace JSONL to Chrome trace_event JSON (Perfetto)",
    )
    trace_export.add_argument("path", help="trace JSONL file (REPRO_TRACE=<path>)")
    trace_export.add_argument(
        "-o", "--output", default=None,
        help="output file (default: <path> with a .chrome.json suffix)",
    )

    compare = sub.add_parser(
        "compare", help="paper-vs-measured table from saved benchmark results"
    )
    compare.add_argument(
        "--results", default="benchmarks/results",
        help="directory holding <figure>.json results",
    )

    store = sub.add_parser("store", help="inspect/maintain an on-disk replay store")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    inspect = store_sub.add_parser("inspect", help="per-shard table of a store")
    inspect.add_argument("root", help="store directory (holds index.json)")
    stats = store_sub.add_parser(
        "stats", help="aggregate stats + latent-memory model cross-check"
    )
    stats.add_argument("root", help="store directory (holds index.json)")
    compact = store_sub.add_parser(
        "compact", help="rewrite shards at uniform occupancy"
    )
    compact.add_argument("root", help="store directory (holds index.json)")
    compact.add_argument(
        "--shard-samples", type=int, default=None,
        help="retarget samples per shard (default: keep the store's setting)",
    )
    federate = store_sub.add_parser(
        "federate",
        help="compose per-task stores under one budget (create/extend/rebalance)",
    )
    federate.add_argument(
        "root", help="federation directory (member stores are subdirectories)"
    )
    federate.add_argument(
        "--members", nargs="*", default=None,
        help="member names to adopt, in task order (default: every "
        "not-yet-adopted subdirectory holding a store index, sorted)",
    )
    federate.add_argument(
        "--budget-bytes", type=int, default=None,
        help="global byte budget enforced across all members "
        "(default: none; on an existing federation, updates its budget)",
    )
    federate.add_argument(
        "--policy", default=None,
        help="eviction policy for rebalancing (fifo | reservoir | "
        "class-balanced; default class-balanced; on an existing "
        "federation, updates its policy)",
    )
    federate.add_argument(
        "--seed", type=int, default=None,
        help="RNG seed of the rebalance passes (default 0; on an "
        "existing federation, updates its seed)",
    )
    return parser


def _print_registries() -> None:
    """Scenario + method registry listing shared by `list` and `scenario list`."""
    from repro.core import available_methods
    from repro.scenario import available as available_scenarios
    from repro.scenario import get as get_scenario

    print("scenarios:")
    for name in available_scenarios():
        print(f"  {name}: {get_scenario(name).describe()}")
    print("methods:")
    for name in available_methods():
        print(f"  {name}")


def _cmd_list() -> int:
    from repro.eval import experiments
    from repro.eval.scale import SCALES, get_scale

    print("experiments:")
    for name in experiments.available_experiments():
        print(f"  {name}")
    print("scales:")
    for name in sorted(SCALES):
        print(f"  {get_scale(name).description}")
    _print_registries()
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.eval.experiments import run_scenario

    if args.scenario_command == "list":
        _print_registries()
        return 0

    scenario = args.name
    if args.steps is not None:
        from repro.scenario import get as get_scenario

        try:
            scenario = get_scenario(args.name, steps_count=args.steps)
        except TypeError as error:
            if "steps_count" not in str(error):
                raise  # a genuine bug inside the factory, not a bad flag
            print(
                f"error: scenario {args.name!r} does not take --steps",
                file=sys.stderr,
            )
            return 2

    if args.combinators:
        from repro import scenario as scenario_pkg
        from repro.scenario import get as get_scenario

        wrappers = {
            "drift": scenario_pkg.with_drift,
            "blur": scenario_pkg.with_blur,
            "task-masks": scenario_pkg.with_task_masks,
            "class-repetition": scenario_pkg.with_class_repetition,
            "label-noise": scenario_pkg.with_label_noise,
        }
        unknown = [name for name in args.combinators if name not in wrappers]
        if unknown:
            print(
                f"error: unknown combinator(s) {unknown}; "
                f"available: {sorted(wrappers)}",
                file=sys.stderr,
            )
            return 2
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        for name in args.combinators:
            scenario = wrappers[name](scenario)

    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.stop_after is not None and args.stop_after <= 0:
        print("error: --stop-after must be positive", file=sys.stderr)
        return 2

    replay = None
    if args.store_dir is not None:
        from repro.core import ReplaySpec

        replay = ReplaySpec(
            store_dir=args.store_dir,
            shard_samples=args.shard_samples,
            overwrite=args.overwrite,
            federation_budget_bytes=args.budget_bytes,
        )
    elif (
        args.shard_samples is not None
        or args.overwrite
        or args.budget_bytes is not None
    ):
        print(
            "error: --shard-samples/--overwrite/--budget-bytes require --store-dir",
            file=sys.stderr,
        )
        return 2
    extra = {}
    if args.checkpoint_dir is not None:
        extra["checkpoint"] = args.checkpoint_dir
        extra["resume"] = args.resume
    if args.stop_after is not None:
        extra["max_steps"] = args.stop_after
    result = run_scenario(
        scenario, args.method, scale=args.scale, replay=replay, **extra
    )
    print(result.describe())
    if args.stop_after is not None and args.checkpoint_dir is not None:
        print(
            f"(stopped after {len(result.steps)} step(s); resume with "
            f"--checkpoint-dir {args.checkpoint_dir} --resume)"
        )
    return 0


def _cmd_backends() -> int:
    from repro.config import backend_selection
    from repro.snn import backends

    requested = backend_selection()
    rows = backends.selection_report()
    print(f"REPRO_BACKEND={requested}")
    name_w = max(len(row["name"]) for row in rows)
    for row in rows:
        marker = "*" if row["selected"] else " "
        status = "available" if row["available"] else "unavailable"
        print(
            f"{marker} {row['name']:{name_w}s}  {row['parity']:9s} "
            f"{status:11s}  {row['reason']}"
        )
    print("(* = selected; set REPRO_BACKEND=numpy|c|torch|auto to override)")
    if not any(row["selected"] for row in rows):
        print(
            f"error: requested backend {requested!r} is unavailable "
            "(see its reason above)",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_info() -> int:
    import repro

    print(f"repro {repro.__version__} — Replay4NCL (DAC 2025) reproduction")
    print(
        "packages: autograd, snn, data, compression, replaystore, training, "
        "core, scenario, hw, eval, obs, lint"
    )
    print("see DESIGN.md for the system inventory and EXPERIMENTS.md for results")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.eval import experiments

    if args.experiment == "all":
        names = experiments.available_experiments()
    else:
        names = [args.experiment]
    for name in names:
        result = experiments.run(name, scale=args.scale)
        print(result.format_text(plot=not args.no_plot))
        print()
        if args.save_dir:
            json_path, csv_path = result.save(args.save_dir)
            print(f"saved {json_path} and {csv_path}")
    return 0


def _cmd_store_federate(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.hw.memory import audit_federation
    from repro.replaystore import FederatedReplayStore
    from repro.replaystore.federation import FEDERATION_INDEX_NAME
    from repro.replaystore.store import INDEX_NAME

    root = Path(args.root)
    if (root / FEDERATION_INDEX_NAME).exists():
        federation = FederatedReplayStore.open(root)
        # Explicit flags retrofit the stored ledger; omitted ones keep it.
        if (
            args.budget_bytes is not None
            or args.policy is not None
            or args.seed is not None
        ):
            federation.configure(
                budget_bytes=args.budget_bytes,
                policy=args.policy,
                seed=args.seed,
            )
    else:
        federation = FederatedReplayStore.create(
            root,
            budget_bytes=args.budget_bytes,
            policy=args.policy or "class-balanced",
            seed=args.seed if args.seed is not None else 0,
        )
    if args.members is not None:
        candidates = list(args.members)
    else:
        candidates = sorted(
            child.name
            for child in root.iterdir()
            if child.is_dir()
            and (child / INDEX_NAME).exists()
            and child.name not in federation.member_names
        )
    for name in candidates:
        federation.adopt(name)
        print(f"adopted {name} ({federation.member(name).num_samples} samples)")
    evicted = federation.rebalance()
    stats = federation.stats()
    print(f"{federation!r}")
    print(f"members:        {stats.member_samples}")
    print(f"samples:        {stats.num_samples} "
          f"({stats.sample_bytes} B/sample modelled)")
    print(f"class counts:   {stats.class_counts}")
    if stats.budget_bytes is not None:
        print(f"budget:         {stats.model_bytes} / {stats.budget_bytes} B "
              f"({stats.budget_utilization:.1%} used, "
              f"{evicted} evicted this pass)")
    if federation.num_samples:
        audit = audit_federation(federation)
        print(f"payload bytes:  {audit.payload_bytes}")
        print(f"disk bytes:     {audit.disk_bytes} "
              f"(model {audit.modelled_bytes} B)")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.hw.memory import audit_store
    from repro.replaystore import ReplayStore

    if args.store_command == "federate":
        return _cmd_store_federate(args)
    store = ReplayStore.open(args.root)
    if args.store_command == "inspect":
        print(f"{store!r}  T={store.meta.stored_frames} C={store.meta.num_channels} "
              f"factor={store.meta.codec_factor} Lins={store.meta.insertion_layer}")
        print(f"{'shard':>5s} {'file':20s} {'samples':>7s} {'codec':>8s} "
              f"{'payload B':>10s} {'offset':>7s}")
        for i, shard in enumerate(store.shards):
            print(f"{i:5d} {shard.file:20s} {shard.num_samples:7d} "
                  f"{shard.codec:>8s} {shard.payload_bytes:10d} "
                  f"{shard.payload_offset:7d}")
        return 0
    if args.store_command == "stats":
        stats = store.stats()
        audit = audit_store(store)
        print(f"samples:        {stats.num_samples} in {stats.num_shards} shards")
        print(f"geometry:       T={stats.stored_frames} C={stats.num_channels}")
        print(f"codec shards:   {stats.codec_shards}")
        print(f"class counts:   {stats.class_counts}")
        print(f"payload bytes:  {stats.payload_bytes} "
              f"({stats.bytes_per_sample:.1f} B/sample)")
        print(f"disk bytes:     {stats.disk_bytes} "
              f"(format overhead {audit.format_overhead_bytes} B)")
        print(f"model bytes:    {audit.modelled_bytes} "
              f"(payload saving {audit.payload_saving:.1%})")
        return 0
    before = store.num_shards
    after = store.compact(args.shard_samples)
    print(f"compacted {before} -> {after} shards "
          f"({store.meta.shard_samples} samples/shard)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import format_json, format_text, lint_paths

    findings = lint_paths(args.paths)
    if args.format == "json":
        print(format_json(findings))
    else:
        print(format_text(findings))
    return 2 if findings else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs import TraceReport, read_jsonl, write_chrome

    spans, metrics = read_jsonl(args.path)
    if args.trace_command == "summary":
        report = TraceReport(spans=spans, metrics=metrics)
        print(report.describe(top=args.top))
        if args.tree:
            print()
            print(report.tree())
        return 0
    output = (
        Path(args.output)
        if args.output is not None
        else Path(args.path).with_suffix(".chrome.json")
    )
    write_chrome(output, spans)
    print(f"wrote {len(spans)} spans to {output} (load in Perfetto/chrome://tracing)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.eval.paper_targets import compare_to_paper, format_comparison

    rows = compare_to_paper(args.results)
    print(format_comparison(rows))
    if all(row["measured"] is None for row in rows):
        print(
            f"\nno results found in {args.results!r} — run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "info":
            return _cmd_info()
        if args.command == "backends":
            return _cmd_backends()
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "scenario":
            return _cmd_scenario(args)
        if args.command == "store":
            return _cmd_store(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "lint":
            return _cmd_lint(args)
        return _cmd_run(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
