"""Wall-clock measurement of the simulation itself.

The analytic models in :mod:`repro.hw` predict *target-hardware* cost;
this module measures what the numpy simulation actually costs on the
host.  Two uses:

- sanity-check that measured wall-clock *ratios* (e.g. T=100 vs T=40
  epochs) agree in direction with the analytic latency model;
- give users an honest runtime expectation per scale preset.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError

__all__ = ["WallClockSample", "measure", "measure_ratio"]


@dataclass(frozen=True)
class WallClockSample:
    """Repeated timing of one callable."""

    label: str
    repeats: int
    best_s: float
    mean_s: float

    def __str__(self) -> str:
        return f"{self.label}: best {self.best_s * 1e3:.2f} ms, mean {self.mean_s * 1e3:.2f} ms"


def measure(
    fn: Callable[[], object],
    label: str = "",
    repeats: int = 5,
    warmup: int = 1,
) -> WallClockSample:
    """Time ``fn`` with warmup; returns best and mean of ``repeats`` runs."""
    if repeats <= 0:
        raise ConfigError(f"repeats must be positive, got {repeats}")
    if warmup < 0:
        raise ConfigError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return WallClockSample(
        label=label,
        repeats=repeats,
        best_s=min(timings),
        mean_s=sum(timings) / len(timings),
    )


def measure_ratio(
    slow_fn: Callable[[], object],
    fast_fn: Callable[[], object],
    repeats: int = 5,
) -> float:
    """Best-time ratio slow/fast — e.g. a T=100 epoch vs a T=40 epoch."""
    slow = measure(slow_fn, "slow", repeats=repeats)
    fast = measure(fast_fn, "fast", repeats=repeats)
    if fast.best_s == 0:
        raise ConfigError("fast callable measured as zero time")
    return slow.best_s / fast.best_s
