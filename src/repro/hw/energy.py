"""Energy model: op counts -> joules on a hardware profile.

``energy = dynamic + static`` where dynamic charges each op class its
profile energy and static charges ``static_power * latency`` — the term
that keeps energy savings below latency savings at late insertion layers
(paper Fig. 10c vs 10b).
"""

from __future__ import annotations

from repro.core.strategies import EpochCost, NCLResult
from repro.hw.latency import LatencyModel
from repro.hw.ops_counter import OpCounts, OpsCounter
from repro.hw.profiles import HardwareProfile

__all__ = ["EnergyModel"]


class EnergyModel:
    """Maps :class:`OpCounts` ledgers to energy."""

    def __init__(self, profile: HardwareProfile, counter: OpsCounter | None = None):
        self.profile = profile
        self.counter = counter or OpsCounter()
        self._latency = LatencyModel(profile, self.counter)

    def counts_energy(self, counts: OpCounts) -> float:
        """Joules to execute ``counts`` on the profile."""
        p = self.profile
        if p.mode == "event":
            compute = (
                counts.sops * p.energy_per_sop
                + counts.neuron_updates * p.energy_per_neuron_update
            )
        else:
            compute = counts.macs * p.energy_per_mac
        dynamic = (
            compute
            + counts.memory_bytes * p.energy_per_byte
            + counts.codec_cells * p.energy_per_codec_cell
        )
        static = p.static_power * self._latency.counts_latency(counts)
        return dynamic + static

    def epoch_energy(self, cost: EpochCost) -> float:
        """Energy (J) of one epoch's spike/synapse activity."""
        return self.counts_energy(self._latency.epoch_counts(cost))

    def run_epoch_energies(self, result: NCLResult) -> list[float]:
        """Per-epoch energies (J) of a full NCL run."""
        return [self.epoch_energy(cost) for cost in result.epoch_costs]

    def run_energy(self, result: NCLResult, include_prepare: bool = True) -> float:
        """Total run energy (J), optionally including preparation."""
        total = sum(self.run_epoch_energies(result))
        if include_prepare:
            total += self.epoch_energy(result.prepare_cost)
        return total

    def cumulative_energy(self, result: NCLResult, epochs: int) -> float:
        """Energy of the first ``epochs`` epochs (Fig. 11c bars)."""
        return sum(self.run_epoch_energies(result)[:epochs])
