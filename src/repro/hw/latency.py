"""Latency model: op counts -> seconds on a hardware profile."""

from __future__ import annotations

from repro.core.strategies import EpochCost, NCLResult
from repro.hw.ops_counter import OpCounts, OpsCounter
from repro.hw.profiles import HardwareProfile

__all__ = ["LatencyModel"]


class LatencyModel:
    """Maps :class:`OpCounts` ledgers to processing time.

    Event-mode profiles time the SOP stream and neuron updates; dense
    profiles time the MAC stream.  Codec work is timed on its own path
    in both modes (the Fig. 7 cycle is memory-bound, not compute-bound).
    """

    def __init__(self, profile: HardwareProfile, counter: OpsCounter | None = None):
        self.profile = profile
        self.counter = counter or OpsCounter()

    # ------------------------------------------------------------------
    def counts_latency(self, counts: OpCounts) -> float:
        """Seconds to execute ``counts`` on the profile."""
        p = self.profile
        if p.mode == "event":
            compute = counts.sops / p.sop_throughput + (
                counts.neuron_updates / p.update_throughput
            )
        else:
            compute = counts.macs / p.mac_throughput
        codec = counts.codec_cells / p.codec_cell_throughput
        barriers = counts.barrier_steps * p.barrier_step_time
        return compute + codec + barriers

    def epoch_counts(self, cost: EpochCost) -> OpCounts:
        """Aggregate op counts of one NCL epoch."""
        total = OpCounts()
        for trace in cost.train_traces:
            total = total + self.counter.count_training(trace)
        for trace in cost.frozen_traces:
            total = total + self.counter.count_forward(trace)
        total = total + self.counter.count_codec(cost.decompressed_cells)
        return total

    def epoch_latency(self, cost: EpochCost) -> float:
        """Latency (s) of one epoch's operation counts."""
        return self.counts_latency(self.epoch_counts(cost))

    # ------------------------------------------------------------------
    def run_epoch_latencies(self, result: NCLResult) -> list[float]:
        """Per-epoch latencies of a full NCL run."""
        return [self.epoch_latency(cost) for cost in result.epoch_costs]

    def run_latency(self, result: NCLResult, include_prepare: bool = True) -> float:
        """Total NCL-phase latency (optionally incl. latent generation)."""
        total = sum(self.run_epoch_latencies(result))
        if include_prepare:
            total += self.epoch_latency(result.prepare_cost)
        return total

    def cumulative_latency(self, result: NCLResult, epochs: int) -> float:
        """Latency of the first ``epochs`` epochs (Fig. 11b bars)."""
        return sum(self.run_epoch_latencies(result)[:epochs])
