"""Hardware profiles: per-operation energies and throughputs.

Constants are order-of-magnitude values from the public literature
(Horowitz ISSCC'14 energy tables; Davies et al. Loihi IEEE Micro'18):
a 32-bit float MAC costs a few pJ in a 45 nm-class process, an
event-driven synaptic operation on a neuromorphic core costs tens of pJ
including routing, and SRAM accesses cost ~0.1 pJ/byte-class numbers.
Absolute values only scale the results — every figure in the paper (and
in our benches) is *normalized*, so the ratios are what matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = [
    "HardwareProfile",
    "embedded_neuromorphic",
    "loihi_like",
    "edge_gpu_like",
]


@dataclass(frozen=True)
class HardwareProfile:
    """An execution target for the latency/energy models.

    Attributes
    ----------
    name:
        Profile identifier used in reports.
    mode:
        ``"event"`` — compute cost scales with synaptic events (SOPs),
        the neuromorphic execution model; ``"dense"`` — cost scales with
        MACs, the GPU/accelerator model.
    energy_per_sop / energy_per_mac:
        Joules per synaptic operation / per multiply-accumulate.
    energy_per_neuron_update:
        Joules per neuron state update (leak + compare per timestep).
    energy_per_byte:
        Joules per byte of weight/activation memory traffic.
    sop_throughput / mac_throughput / update_throughput:
        Operations per second available to the latency model.
    codec_cell_throughput:
        Raster cells per second the (de)compression path processes.
    energy_per_codec_cell:
        Joules per raster cell touched by the codec.
    barrier_step_time:
        Seconds per timestep synchronisation barrier (per layer, per
        sample).  Event-driven cores advance in lockstep; this fixed
        per-timestep cost is why latency tracks the timestep count even
        at constant spike counts (the paper's Fig. 8b observation C).
    static_power:
        Watts drawn regardless of activity; multiplied by latency.
    """

    name: str
    mode: str
    energy_per_sop: float
    energy_per_mac: float
    energy_per_neuron_update: float
    energy_per_byte: float
    sop_throughput: float
    mac_throughput: float
    update_throughput: float
    codec_cell_throughput: float
    energy_per_codec_cell: float
    barrier_step_time: float
    static_power: float

    def __post_init__(self):
        if self.mode not in ("event", "dense"):
            raise ConfigError(f"mode must be 'event' or 'dense', got {self.mode!r}")
        numeric = (
            self.energy_per_sop,
            self.energy_per_mac,
            self.energy_per_neuron_update,
            self.energy_per_byte,
            self.sop_throughput,
            self.mac_throughput,
            self.update_throughput,
            self.codec_cell_throughput,
            self.energy_per_codec_cell,
            self.barrier_step_time,
        )
        if any(v <= 0 for v in numeric):
            raise ConfigError(f"profile {self.name!r} has non-positive constants")
        if self.static_power < 0:
            raise ConfigError("static_power must be >= 0")


def embedded_neuromorphic() -> HardwareProfile:
    """Default target: a small event-driven neuromorphic SoC.

    The use-case of paper Fig. 1(b) — a battery-powered mobile agent.
    """
    return HardwareProfile(
        name="embedded-neuromorphic",
        mode="event",
        energy_per_sop=20e-12,  # ~20 pJ incl. routing
        energy_per_mac=4e-12,
        energy_per_neuron_update=2e-12,
        energy_per_byte=0.5e-12,  # on-chip SRAM
        sop_throughput=2e9,
        mac_throughput=5e9,
        update_throughput=5e9,
        codec_cell_throughput=1e9,
        energy_per_codec_cell=1e-12,
        # Calibrated so barrier time and event compute are comparable for
        # embedded-class networks (tens-of-neurons layers); this yields
        # per-epoch speedups that saturate below the raw timestep ratio,
        # as the paper's 2.34x (vs 100/40 = 2.5x) does.
        barrier_step_time=0.5e-6,
        static_power=0.05,  # 50 mW SoC idle
    )


def loihi_like() -> HardwareProfile:
    """A Loihi-class manycore neuromorphic processor."""
    return HardwareProfile(
        name="loihi-like",
        mode="event",
        energy_per_sop=23.6e-12,  # Davies et al. 2018 synaptic-op energy
        energy_per_mac=10e-12,
        energy_per_neuron_update=81e-12,  # neuron update energy
        energy_per_byte=1e-12,
        sop_throughput=10e9,
        mac_throughput=1e9,
        update_throughput=10e9,
        codec_cell_throughput=2e9,
        energy_per_codec_cell=2e-12,
        barrier_step_time=5e-6,
        static_power=0.1,
    )


def edge_gpu_like() -> HardwareProfile:
    """A dense edge accelerator (Jetson-class): cost scales with MACs."""
    return HardwareProfile(
        name="edge-gpu-like",
        mode="dense",
        energy_per_sop=4e-12,
        energy_per_mac=2e-12,
        energy_per_neuron_update=1e-12,
        energy_per_byte=7e-12,  # DRAM-heavy traffic
        sop_throughput=50e9,
        mac_throughput=500e9,
        update_throughput=100e9,
        codec_cell_throughput=5e9,
        energy_per_codec_cell=0.5e-12,
        barrier_step_time=5e-6,  # kernel-launch per step
        static_power=5.0,
    )
