"""Normalized cost tables comparing NCL methods on a hardware profile."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.strategies import NCLResult
from repro.errors import ConfigError
from repro.hw.energy import EnergyModel
from repro.hw.latency import LatencyModel
from repro.hw.profiles import HardwareProfile, embedded_neuromorphic

__all__ = ["MethodCost", "CostReport", "build_cost_report"]


@dataclass(frozen=True)
class MethodCost:
    """Absolute and normalized costs of one NCL run."""

    label: str
    latency_s: float
    energy_j: float
    latent_bytes: int
    old_accuracy: float
    new_accuracy: float
    latency_ratio: float = 1.0
    energy_ratio: float = 1.0
    memory_ratio: float = 1.0

    @property
    def latency_speedup(self) -> float:
        """Reference latency / this latency (>1 means faster)."""
        return 1.0 / self.latency_ratio if self.latency_ratio else float("inf")

    @property
    def energy_saving(self) -> float:
        """Fractional energy saving vs the reference (0.36 == 36%)."""
        return 1.0 - self.energy_ratio

    @property
    def memory_saving(self) -> float:
        """Fractional memory saved versus the baseline method."""
        return 1.0 - self.memory_ratio


@dataclass
class CostReport:
    """A set of method costs normalized to the first (reference) row."""

    profile_name: str
    rows: list[MethodCost]

    def format_table(self) -> str:
        """ASCII table in the style of the paper's result summaries."""
        header = (
            f"{'method':24s} {'old acc':>8s} {'new acc':>8s} {'latency':>10s} "
            f"{'speedup':>8s} {'energy':>10s} {'saving':>8s} {'latent B':>10s} {'saving':>8s}"
        )
        lines = [f"cost report on {self.profile_name}", header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.label:24s} {row.old_accuracy:8.4f} {row.new_accuracy:8.4f} "
                f"{row.latency_s:10.4g} {row.latency_speedup:7.2f}x "
                f"{row.energy_j:10.4g} {row.energy_saving:7.1%} "
                f"{row.latent_bytes:10d} {row.memory_saving:7.1%}"
            )
        return "\n".join(lines)


def build_cost_report(
    results: list[tuple[str, NCLResult]],
    profile: HardwareProfile | None = None,
    include_prepare: bool = True,
) -> CostReport:
    """Compute a :class:`CostReport`; the first result is the reference.

    ``results`` pairs a display label with an :class:`NCLResult` (labels
    let callers distinguish e.g. methods across insertion layers).
    """
    if not results:
        raise ConfigError("need at least one result to report on")
    profile = profile or embedded_neuromorphic()
    latency_model = LatencyModel(profile)
    energy_model = EnergyModel(profile)

    absolute: list[MethodCost] = []
    for label, result in results:
        absolute.append(
            MethodCost(
                label=label,
                latency_s=latency_model.run_latency(result, include_prepare),
                energy_j=energy_model.run_energy(result, include_prepare),
                latent_bytes=result.latent_storage_bytes,
                old_accuracy=result.final_old_accuracy,
                new_accuracy=result.final_new_accuracy,
            )
        )

    ref = absolute[0]
    rows = [
        MethodCost(
            label=row.label,
            latency_s=row.latency_s,
            energy_j=row.energy_j,
            latent_bytes=row.latent_bytes,
            old_accuracy=row.old_accuracy,
            new_accuracy=row.new_accuracy,
            latency_ratio=row.latency_s / ref.latency_s if ref.latency_s else 1.0,
            energy_ratio=row.energy_j / ref.energy_j if ref.energy_j else 1.0,
            memory_ratio=(
                row.latent_bytes / ref.latent_bytes if ref.latent_bytes else 1.0
            ),
        )
        for row in absolute
    ]
    return CostReport(profile_name=profile.name, rows=rows)
