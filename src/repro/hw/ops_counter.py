"""Turning simulation traces into operation counts.

The counting rules (documented per field of :class:`OpCounts`):

- **SOPs** — event-driven synaptic operations: every presynaptic spike
  triggers one synaptic update per outgoing connection, so a layer with
  fan-out ``n_out`` charges ``input_spikes * n_out`` feedforward SOPs
  plus ``output_spikes * n_out`` recurrent SOPs when a recurrent
  projection exists.
- **MACs** — dense execution work: ``T * B * (n_in * n_out [+ n_out^2])``
  independent of sparsity (a GPU multiplies zeros too).
- **Neuron updates** — one leak/compare per neuron per timestep:
  ``T * B * n_out``.
- **Weight-memory bytes** — event mode reads one 4-byte weight per SOP;
  dense mode streams the full weight matrix once per timestep per batch
  row is *not* charged (weights are cached); instead it charges
  activations: ``4 bytes * T * B * (n_in + n_out)``.

Backward passes of BPTT are charged as ``backward_multiplier`` (default
2.0) times the forward counts — the standard two-matmuls-per-matmul
rule of reverse-mode AD.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.snn.state import SpikeTrace

__all__ = ["OpCounts", "OpsCounter"]

_WEIGHT_BYTES = 4.0


@dataclass(frozen=True)
class OpCounts:
    """Operation totals for some unit of work (a pass, an epoch, a run).

    ``barrier_steps`` counts timestep synchronisation barriers: event-
    driven hardware advances in lockstep, one barrier per layer per
    simulated timestep, regardless of how many spikes flew.  This is the
    term that makes latency scale with the timestep count even when a
    zero-stuffed replay carries the same number of spikes — the physical
    basis of the paper's timestep-reduction latency savings.
    """

    sops: float = 0.0
    macs: float = 0.0
    neuron_updates: float = 0.0
    memory_bytes: float = 0.0
    codec_cells: float = 0.0
    barrier_steps: float = 0.0

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            sops=self.sops + other.sops,
            macs=self.macs + other.macs,
            neuron_updates=self.neuron_updates + other.neuron_updates,
            memory_bytes=self.memory_bytes + other.memory_bytes,
            codec_cells=self.codec_cells + other.codec_cells,
            barrier_steps=self.barrier_steps + other.barrier_steps,
        )

    def scaled(self, factor: float) -> "OpCounts":
        """New counts with every component multiplied by ``factor``."""
        return OpCounts(
            sops=self.sops * factor,
            macs=self.macs * factor,
            neuron_updates=self.neuron_updates * factor,
            memory_bytes=self.memory_bytes * factor,
            codec_cells=self.codec_cells * factor,
            barrier_steps=self.barrier_steps * factor,
        )


class OpsCounter:
    """Counts operations from :class:`SpikeTrace` records."""

    def __init__(self, backward_multiplier: float = 2.0):
        if backward_multiplier < 0:
            raise ConfigError(
                f"backward_multiplier must be >= 0, got {backward_multiplier}"
            )
        self.backward_multiplier = float(backward_multiplier)

    def count_forward(self, trace: SpikeTrace) -> OpCounts:
        """Forward-pass counts of one trace."""
        sops = macs = updates = mem = barriers = 0.0
        for e in trace.entries:
            sops += e.input_spike_count * e.n_out
            dense = e.n_in * e.n_out
            if e.recurrent:
                sops += e.output_spike_count * e.n_out
                dense += e.n_out * e.n_out
            macs += float(e.timesteps) * e.batch * dense
            updates += float(e.timesteps) * e.batch * e.n_out
            mem += _WEIGHT_BYTES * (
                e.input_spike_count * e.n_out  # event-mode weight reads
                + float(e.timesteps) * e.batch * (e.n_in + e.n_out)  # activations
            )
            # One sync barrier per layer per timestep per sample (embedded
            # deployments process samples sequentially, batch=1 streams).
            barriers += float(e.timesteps) * e.batch
        return OpCounts(
            sops=sops,
            macs=macs,
            neuron_updates=updates,
            memory_bytes=mem,
            barrier_steps=barriers,
        )

    def count_training(self, trace: SpikeTrace) -> OpCounts:
        """Forward + backward counts of one training pass."""
        forward = self.count_forward(trace)
        return forward + forward.scaled(self.backward_multiplier)

    def count_codec(self, cells: int) -> OpCounts:
        """Counts for touching ``cells`` raster cells in a codec pass."""
        if cells < 0:
            raise ConfigError(f"cells must be >= 0, got {cells}")
        # One byte-level touch per cell (read-modify-write amortised).
        return OpCounts(codec_cells=float(cells), memory_bytes=float(cells) / 8.0)
