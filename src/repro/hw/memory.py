"""Latent-replay memory model (paper Fig. 12).

Latent activations are binary rasters, so storage is 1 bit per cell plus
fixed per-sample metadata.  SpikingLR stores ``ceil(T/2)`` frames/sample
(Fig. 7 factor-2 subsampling of T=100); Replay4NCL stores ``T*`` frames
natively — 40 vs 50 is the paper's headline 20% saving, rising slightly
once headers amortise differently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.bitpack import BitpackCodec
from repro.core.latent_replay import HEADER_BYTES_PER_SAMPLE, LatentReplayBuffer
from repro.errors import ConfigError

__all__ = [
    "latent_memory_bytes",
    "LatentMemoryModel",
    "StoreAudit",
    "audit_store",
    "FederationAudit",
    "audit_federation",
]


def latent_memory_bytes(
    stored_frames: int,
    num_samples: int,
    num_channels: int,
    header_bytes: int = HEADER_BYTES_PER_SAMPLE,
) -> int:
    """Bytes to store a latent buffer of the given geometry."""
    if stored_frames <= 0 or num_samples <= 0 or num_channels <= 0:
        raise ConfigError("buffer geometry must be positive")
    if header_bytes < 0:
        raise ConfigError(f"header_bytes must be >= 0, got {header_bytes}")
    payload = BitpackCodec().packed_bytes((stored_frames, num_samples, num_channels))
    return payload + header_bytes * num_samples


@dataclass(frozen=True)
class StoreAudit:
    """Analytic model vs. measured bytes of one on-disk replay store.

    ``modelled_bytes`` is the Fig. 12 storage model applied to the
    store's geometry (bit-packed payload + per-sample headers);
    ``payload_bytes`` is what the per-shard codecs actually encoded
    (never larger than the bitmap, since the denser codec is chosen per
    shard); ``disk_bytes`` is the real on-disk total including shard
    headers and the index.
    """

    modelled_bytes: int
    payload_bytes: int
    disk_bytes: int
    num_shards: int
    num_samples: int

    @property
    def payload_saving(self) -> float:
        """Fractional saving of the codec payload vs the analytic model."""
        return 1.0 - self.payload_bytes / self.modelled_bytes

    @property
    def format_overhead_bytes(self) -> int:
        """Index + shard-header bytes on top of the raw codec payload."""
        return self.disk_bytes - self.payload_bytes


def audit_store(store, header_bytes: int = HEADER_BYTES_PER_SAMPLE) -> StoreAudit:
    """Cross-check the analytic latent-memory model against a real store.

    This is the accounting bridge the ``repro store stats`` CLI and the
    store tests use: if the model and the shard files ever diverge
    beyond codec choice + format overhead, either the storage model or
    the store format has drifted.
    """
    if store.num_samples == 0:
        raise ConfigError(f"store at {store.root} holds no samples to audit")
    modelled = latent_memory_bytes(
        store.meta.stored_frames,
        store.num_samples,
        store.meta.num_channels,
        header_bytes,
    )
    return StoreAudit(
        modelled_bytes=modelled,
        payload_bytes=store.payload_bytes(),
        disk_bytes=store.disk_bytes(),
        num_shards=store.num_shards,
        num_samples=store.num_samples,
    )


@dataclass(frozen=True)
class FederationAudit:
    """Model-vs-disk accounting of a federated replay store.

    Aggregates the per-member :class:`StoreAudit` rows and adds the
    federation's own budget ledger: ``budget_model_bytes`` is the
    per-sample budget model (the quantity the federation's
    ``budget_bytes`` caps — same model the streaming builder budgets
    with), while ``modelled_bytes`` sums the members' Fig. 12 bitmap
    models.  Empty members (fully evicted by rebalancing) contribute
    zero and carry no audit row.
    """

    member_audits: dict[str, StoreAudit]
    modelled_bytes: int
    payload_bytes: int
    disk_bytes: int
    budget_model_bytes: int
    budget_bytes: int | None
    num_members: int
    num_samples: int

    @property
    def budget_utilization(self) -> float | None:
        """Budget-model bytes over the budget (None when unbudgeted)."""
        if self.budget_bytes is None:
            return None
        return self.budget_model_bytes / self.budget_bytes

    @property
    def within_budget(self) -> bool:
        """The federation's core invariant (vacuously true unbudgeted)."""
        if self.budget_bytes is None:
            return True
        return self.budget_model_bytes <= self.budget_bytes


def audit_federation(federation, header_bytes: int = HEADER_BYTES_PER_SAMPLE):
    """Cross-check the latent-memory model against a whole federation.

    The federated twin of :func:`audit_store`: every non-empty member
    store gets the model-vs-disk check, and the federation's global
    byte-budget invariant is surfaced as
    :attr:`FederationAudit.within_budget` — the quantity the
    long-task-sequence tests assert never goes false across steps.
    """
    if federation.num_members == 0:
        raise ConfigError(
            f"federation at {federation.root} has no members to audit"
        )
    member_audits: dict[str, StoreAudit] = {}
    for name, store in federation.members():
        if store.num_samples > 0:
            member_audits[name] = audit_store(store, header_bytes)
    return FederationAudit(
        member_audits=member_audits,
        modelled_bytes=sum(a.modelled_bytes for a in member_audits.values()),
        payload_bytes=federation.payload_bytes(),
        disk_bytes=federation.disk_bytes(),
        budget_model_bytes=federation.model_bytes(),
        budget_bytes=federation.budget_bytes,
        num_members=federation.num_members,
        num_samples=federation.num_samples,
    )


@dataclass(frozen=True)
class LatentMemoryModel:
    """Comparative latent-memory accounting across methods/layers."""

    header_bytes: int = HEADER_BYTES_PER_SAMPLE

    def audit_store(self, store) -> StoreAudit:
        """Model-vs-disk audit of a replay store (see :func:`audit_store`)."""
        return audit_store(store, self.header_bytes)

    def buffer_bytes(self, buffer: LatentReplayBuffer) -> int:
        """Resident bytes of a latent replay buffer under this model."""
        return latent_memory_bytes(
            buffer.stored_frames,
            buffer.num_samples,
            buffer.num_channels,
            self.header_bytes,
        )

    def geometry_bytes(
        self, stored_frames: int, num_samples: int, num_channels: int
    ) -> int:
        """Resident bytes for an explicit buffer geometry."""
        return latent_memory_bytes(
            stored_frames, num_samples, num_channels, self.header_bytes
        )

    def saving(self, reference_bytes: int, candidate_bytes: int) -> float:
        """Fractional saving of candidate vs reference (0.2 == 20%)."""
        if reference_bytes <= 0:
            raise ConfigError("reference_bytes must be positive")
        return 1.0 - candidate_bytes / reference_bytes
