"""Latent-replay memory model (paper Fig. 12).

Latent activations are binary rasters, so storage is 1 bit per cell plus
fixed per-sample metadata.  SpikingLR stores ``ceil(T/2)`` frames/sample
(Fig. 7 factor-2 subsampling of T=100); Replay4NCL stores ``T*`` frames
natively — 40 vs 50 is the paper's headline 20% saving, rising slightly
once headers amortise differently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.bitpack import BitpackCodec
from repro.core.latent_replay import HEADER_BYTES_PER_SAMPLE, LatentReplayBuffer
from repro.errors import ConfigError

__all__ = ["latent_memory_bytes", "LatentMemoryModel"]


def latent_memory_bytes(
    stored_frames: int,
    num_samples: int,
    num_channels: int,
    header_bytes: int = HEADER_BYTES_PER_SAMPLE,
) -> int:
    """Bytes to store a latent buffer of the given geometry."""
    if stored_frames <= 0 or num_samples <= 0 or num_channels <= 0:
        raise ConfigError("buffer geometry must be positive")
    if header_bytes < 0:
        raise ConfigError(f"header_bytes must be >= 0, got {header_bytes}")
    payload = BitpackCodec().packed_bytes((stored_frames, num_samples, num_channels))
    return payload + header_bytes * num_samples


@dataclass(frozen=True)
class LatentMemoryModel:
    """Comparative latent-memory accounting across methods/layers."""

    header_bytes: int = HEADER_BYTES_PER_SAMPLE

    def buffer_bytes(self, buffer: LatentReplayBuffer) -> int:
        return latent_memory_bytes(
            buffer.stored_frames,
            buffer.num_samples,
            buffer.num_channels,
            self.header_bytes,
        )

    def geometry_bytes(
        self, stored_frames: int, num_samples: int, num_channels: int
    ) -> int:
        return latent_memory_bytes(
            stored_frames, num_samples, num_channels, self.header_bytes
        )

    def saving(self, reference_bytes: int, candidate_bytes: int) -> float:
        """Fractional saving of candidate vs reference (0.2 == 20%)."""
        if reference_bytes <= 0:
            raise ConfigError("reference_bytes must be positive")
        return 1.0 - candidate_bytes / reference_bytes
