"""Analytic hardware cost models: latency, energy, latent memory.

The paper reports processing time and energy measured on an RTX 4090 Ti
while motivating *embedded neuromorphic* deployment.  Neither target is
measurable in this environment, so this package substitutes analytic
models driven by **counted operations from the actual simulation
traces** (spikes, synaptic events, MACs, memory traffic).  The paper's
latency/energy results are monotone in timesteps and op counts, so the
shapes — who wins, by what factor, where the crossovers sit — carry over
(see DESIGN.md §2).

Models
------
- :class:`HardwareProfile` — per-op energies and throughputs; presets for
  an event-driven embedded neuromorphic target (default), a Loihi-like
  chip, and a dense edge-GPU-like target.
- :class:`OpsCounter` — turns :class:`~repro.snn.state.SpikeTrace` into
  :class:`OpCounts` (SOPs, MACs, neuron updates, weight-memory traffic).
- :class:`LatencyModel` / :class:`EnergyModel` — per-epoch and per-run
  costs from :class:`~repro.core.strategies.EpochCost` ledgers.
- :func:`latent_memory_bytes` — the storage model behind Fig. 12.
- :func:`audit_store` — cross-check of that model against the actual
  shard bytes of an on-disk :mod:`repro.replaystore` store.
- :class:`CostReport` — normalized method-vs-method tables.
"""

from repro.hw.energy import EnergyModel
from repro.hw.latency import LatencyModel
from repro.hw.memory import (
    latent_memory_bytes,
    audit_federation,
    audit_store,
    FederationAudit,
    LatentMemoryModel,
    StoreAudit,
)
from repro.hw.ops_counter import OpCounts, OpsCounter
from repro.hw.profiles import (
    HardwareProfile,
    edge_gpu_like,
    embedded_neuromorphic,
    loihi_like,
)
from repro.hw.report import CostReport, MethodCost, build_cost_report
from repro.hw.wallclock import WallClockSample, measure, measure_ratio

__all__ = [
    "WallClockSample",
    "measure",
    "measure_ratio",
    "HardwareProfile",
    "embedded_neuromorphic",
    "loihi_like",
    "edge_gpu_like",
    "OpCounts",
    "OpsCounter",
    "LatencyModel",
    "EnergyModel",
    "latent_memory_bytes",
    "LatentMemoryModel",
    "StoreAudit",
    "audit_store",
    "FederationAudit",
    "audit_federation",
    "CostReport",
    "MethodCost",
    "build_cost_report",
]
