"""Lossless 1-bit-per-cell packing of binary spike rasters.

Latent replay data is binary, so the natural embedded storage format is a
bitmap: ``T x C`` cells -> ``ceil(T*C / 8)`` bytes.  This codec both
performs the packing (so round-trips are testable) and is the byte-count
authority used by the latent-memory model (paper Fig. 12).
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError

__all__ = ["BitpackCodec"]


class BitpackCodec:
    """Pack/unpack binary rasters into uint8 bitmaps."""

    def compress(self, raster: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
        """Return ``(packed_bytes, original_shape)``.

        Raises :class:`CodecError` if the raster is not binary — packing
        anything else would silently corrupt data.
        """
        raster = np.asarray(raster)
        if raster.size == 0:
            raise CodecError("cannot pack an empty raster")
        values = np.unique(raster)
        if not np.all(np.isin(values, (0.0, 1.0))):
            raise CodecError(f"raster must be binary, found values {values[:5]}")
        packed = np.packbits(raster.astype(np.uint8).reshape(-1))
        return packed, tuple(raster.shape)

    def decompress(self, packed: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        """Exact inverse of :meth:`compress`."""
        size = int(np.prod(shape))
        if packed.dtype != np.uint8:
            raise CodecError(f"packed data must be uint8, got {packed.dtype}")
        if packed.size * 8 < size:
            raise CodecError(
                f"packed buffer holds {packed.size * 8} bits < {size} required"
            )
        bits = np.unpackbits(packed)[:size]
        return bits.reshape(shape).astype(np.float32)

    def packed_bytes(self, shape: tuple[int, ...]) -> int:
        """Storage bytes for a raster of ``shape`` (8 cells per byte)."""
        size = int(np.prod(shape))
        if size <= 0:
            raise CodecError(f"shape must be non-empty, got {shape}")
        return (size + 7) // 8

    def __repr__(self) -> str:
        return "BitpackCodec()"
