"""Lossless address-event (AER) coding of spike rasters.

Stores each spike as a ``(timestep, channel)`` pair — the native format
of neuromorphic sensors and a better layout than bitmaps when rasters are
very sparse.  Provided for the codec-choice ablation; the crossover
against :class:`BitpackCodec` sits at a density of
``8 / (bytes per event * 8)`` spikes per cell.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError

__all__ = ["AddressEventCodec"]


class AddressEventCodec:
    """Sparse (t, channel) event-list coding.

    Parameters
    ----------
    time_bytes / channel_bytes:
        Integer width used per coordinate; defaults hold T, C < 65536.
    """

    def __init__(self, time_bytes: int = 2, channel_bytes: int = 2):
        if time_bytes <= 0 or channel_bytes <= 0:
            raise CodecError("coordinate byte widths must be positive")
        self.time_bytes = int(time_bytes)
        self.channel_bytes = int(channel_bytes)

    @property
    def bytes_per_event(self) -> int:
        """Encoded bytes per address event (time + channel fields)."""
        return self.time_bytes + self.channel_bytes

    def compress(
        self, raster: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, tuple[int, ...]]:
        """Return ``(times, flat_channels, original_shape)``.

        The non-time axes are flattened into a single channel coordinate.
        """
        raster = np.asarray(raster)
        if raster.ndim < 2:
            raise CodecError(f"raster must be at least [T, C], got shape {raster.shape}")
        values = np.unique(raster)
        if not np.all(np.isin(values, (0.0, 1.0))):
            raise CodecError("raster must be binary")
        flat = raster.reshape(raster.shape[0], -1)
        limit_t = 256**self.time_bytes
        limit_c = 256**self.channel_bytes
        if flat.shape[0] > limit_t or flat.shape[1] > limit_c:
            raise CodecError(
                f"raster {flat.shape} exceeds coordinate range "
                f"({limit_t} x {limit_c})"
            )
        t_idx, c_idx = np.nonzero(flat)
        return t_idx.astype(np.uint32), c_idx.astype(np.uint32), tuple(raster.shape)

    def decompress(
        self,
        times: np.ndarray,
        channels: np.ndarray,
        shape: tuple[int, ...],
    ) -> np.ndarray:
        """Exact inverse of :meth:`compress`."""
        if times.shape != channels.shape:
            raise CodecError("times and channels must align")
        flat = np.zeros((shape[0], int(np.prod(shape[1:]))), dtype=np.float32)
        if times.size:
            if times.max() >= flat.shape[0] or channels.max() >= flat.shape[1]:
                raise CodecError("event coordinates exceed raster shape")
            flat[times, channels] = 1.0
        return flat.reshape(shape)

    def compressed_bytes(self, num_events: int) -> int:
        """Storage bytes for ``num_events`` spikes."""
        if num_events < 0:
            raise CodecError(f"num_events must be >= 0, got {num_events}")
        return num_events * self.bytes_per_event

    def __repr__(self) -> str:
        return (
            f"AddressEventCodec(time_bytes={self.time_bytes}, "
            f"channel_bytes={self.channel_bytes})"
        )
