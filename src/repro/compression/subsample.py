"""The Fig. 7 temporal subsampling codec (adopted from SpikingLR).

The paper's example (factor 2)::

    original:     1 1 0 1 0 1 0 0 1 0 1 1 1 0      (14 frames)
    compressed:   1 0 0 0 1 1 1                     ( 7 frames)
    decompressed: 1 0 0 0 0 0 0 0 1 0 1 0 1 0      (14 frames)

Compression keeps every k-th frame (the *first* frame of each window);
decompression re-expands by placing each stored frame at the start of its
window and zero-filling the rest.  The round-trip is deliberately lossy:
spikes on dropped frames vanish — that is the latency/accuracy trade the
paper optimises around.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError

__all__ = ["TemporalSubsampleCodec"]


class TemporalSubsampleCodec:
    """Keep-every-k-th-frame compression of binary rasters (Fig. 7).

    Parameters
    ----------
    factor:
        Subsampling factor k.  ``factor=1`` is the identity (what
        Replay4NCL uses: latent data stored natively at the reduced
        timestep, no decompression pass needed).
    """

    def __init__(self, factor: int = 2):
        if int(factor) != factor or factor < 1:
            raise CodecError(f"factor must be a positive integer, got {factor}")
        self.factor = int(factor)

    def compressed_length(self, timesteps: int) -> int:
        """Frames stored for a ``timesteps``-frame raster: ceil(T / k)."""
        if timesteps <= 0:
            raise CodecError(f"timesteps must be positive, got {timesteps}")
        return (timesteps + self.factor - 1) // self.factor

    def compress(self, raster: np.ndarray) -> np.ndarray:
        """Select frames ``0, k, 2k, ...`` along the leading time axis."""
        raster = np.asarray(raster)
        if raster.ndim < 1 or raster.shape[0] == 0:
            raise CodecError("raster must have a non-empty leading time axis")
        return raster[:: self.factor].copy()

    def decompress(self, compressed: np.ndarray, timesteps: int) -> np.ndarray:
        """Zero-stuff back to ``timesteps`` frames (Fig. 7 bottom row)."""
        compressed = np.asarray(compressed)
        if compressed.ndim < 1:
            raise CodecError("compressed raster must have a leading time axis")
        expected = self.compressed_length(timesteps)
        if compressed.shape[0] != expected:
            raise CodecError(
                f"compressed length {compressed.shape[0]} does not match "
                f"{expected} = ceil({timesteps} / {self.factor})"
            )
        out = np.zeros((timesteps,) + compressed.shape[1:], dtype=np.float32)
        out[:: self.factor] = compressed
        return out

    def roundtrip(self, raster: np.ndarray) -> np.ndarray:
        """Compress then decompress at the original length (lossy)."""
        raster = np.asarray(raster)
        return self.decompress(self.compress(raster), raster.shape[0])

    def __repr__(self) -> str:
        return f"TemporalSubsampleCodec(factor={self.factor})"
