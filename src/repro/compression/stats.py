"""Codec size accounting and comparison."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.bitpack import BitpackCodec
from repro.compression.sparse import AddressEventCodec
from repro.compression.subsample import TemporalSubsampleCodec

__all__ = ["CodecStats", "compare_codecs"]


@dataclass(frozen=True)
class CodecStats:
    """Size and fidelity of one codec applied to one raster."""

    codec: str
    stored_bytes: int
    raw_bytes: int
    lossless: bool
    spikes_in: int
    spikes_out: int

    @property
    def compression_ratio(self) -> float:
        """Ratio of raw to stored bytes (higher is better)."""
        return self.raw_bytes / self.stored_bytes if self.stored_bytes else float("inf")

    @property
    def spike_retention(self) -> float:
        """Fraction of spikes surviving a round-trip (1.0 if lossless)."""
        return self.spikes_out / self.spikes_in if self.spikes_in else 1.0


def compare_codecs(
    raster: np.ndarray, subsample_factor: int = 2
) -> list[CodecStats]:
    """Evaluate all three codecs on one binary raster.

    The raw baseline is the bit-packed full raster (binary data never
    needs more than 1 bit/cell even "uncompressed").
    """
    raster = np.asarray(raster)
    bitpack = BitpackCodec()
    aer = AddressEventCodec()
    subsample = TemporalSubsampleCodec(subsample_factor)

    raw_bytes = bitpack.packed_bytes(raster.shape)
    spikes_in = int(raster.sum())

    packed, shape = bitpack.compress(raster)
    bp_stats = CodecStats(
        codec=repr(bitpack),
        stored_bytes=int(packed.size),
        raw_bytes=raw_bytes,
        lossless=True,
        spikes_in=spikes_in,
        spikes_out=int(bitpack.decompress(packed, shape).sum()),
    )

    times, channels, _ = aer.compress(raster)
    aer_stats = CodecStats(
        codec=repr(aer),
        stored_bytes=aer.compressed_bytes(times.size),
        raw_bytes=raw_bytes,
        lossless=True,
        spikes_in=spikes_in,
        spikes_out=spikes_in,
    )

    compressed = subsample.compress(raster)
    restored = subsample.decompress(compressed, raster.shape[0])
    sub_stats = CodecStats(
        codec=repr(subsample),
        stored_bytes=bitpack.packed_bytes(compressed.shape),
        raw_bytes=raw_bytes,
        lossless=subsample_factor == 1,
        spikes_in=spikes_in,
        spikes_out=int(restored.sum()),
    )
    return [bp_stats, aer_stats, sub_stats]
