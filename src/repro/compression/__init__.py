"""Spike-train codecs for latent replay storage.

Three codecs, all operating on binary time-major rasters:

- :class:`TemporalSubsampleCodec` — the lossy compression/decompression
  mechanism of paper Fig. 7 (adopted from SpikingLR): keep every k-th
  frame; decompress by re-inserting the dropped frames as zeros.
- :class:`BitpackCodec` — lossless 1 bit/cell packing; models the actual
  storage format of binary latent activations and provides the byte
  counts behind the latent-memory results (Fig. 12).
- :class:`AddressEventCodec` — lossless sparse (t, channel) address-event
  coding, the alternative storage layout for very sparse rasters.

Size accounting for all codecs lives in :mod:`repro.compression.stats`.
"""

from repro.compression.bitpack import BitpackCodec
from repro.compression.sparse import AddressEventCodec
from repro.compression.stats import CodecStats, compare_codecs
from repro.compression.subsample import TemporalSubsampleCodec

__all__ = [
    "TemporalSubsampleCodec",
    "BitpackCodec",
    "AddressEventCodec",
    "CodecStats",
    "compare_codecs",
]
