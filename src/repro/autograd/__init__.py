"""A small reverse-mode automatic-differentiation engine over numpy.

This package is the training substrate for the whole library: the paper
trains recurrent spiking networks with surrogate-gradient BPTT on PyTorch;
this environment has no PyTorch, so we implement the same math from
scratch.  The engine is tape-based: every operation on a
:class:`~repro.autograd.tensor.Tensor` records its parents and a
vector-Jacobian product, and :meth:`Tensor.backward` replays the tape in
reverse topological order.

Public surface
--------------
- :class:`Tensor` — the differentiable array type.
- :func:`tensor` / :func:`zeros` / :func:`ones` / :func:`randn` — creation.
- :mod:`repro.autograd.functional` — softmax, cross-entropy, sigmoid, ...
- :mod:`repro.autograd.surrogate` — the Heaviside spike op whose backward
  pass is a surrogate gradient (fast-sigmoid by default, as in the paper).
- :class:`Function` — raw-kernel hook: run a whole numpy computation
  (e.g. a fused SNN time loop) as a single multi-output tape node.
- :func:`gradcheck` — numerical verification used by the test-suite.
- :func:`no_grad` — context manager disabling tape recording.
"""

from repro.autograd.tensor import (
    Tensor,
    concat,
    is_grad_enabled,
    maximum,
    no_grad,
    ones,
    randn,
    stack,
    tensor,
    where,
    zeros,
)
from repro.autograd import functional
from repro.autograd.functional import (
    cross_entropy,
    log_softmax,
    mse_loss,
    one_hot,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from repro.autograd.surrogate import (
    SurrogateSpec,
    atan_surrogate,
    boxcar_surrogate,
    fast_sigmoid_surrogate,
    spike,
    straight_through_surrogate,
)
from repro.autograd.function import Function, FunctionContext
from repro.autograd.gradcheck import gradcheck

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "randn",
    "stack",
    "concat",
    "where",
    "maximum",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "sigmoid",
    "tanh",
    "relu",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "mse_loss",
    "one_hot",
    "SurrogateSpec",
    "spike",
    "fast_sigmoid_surrogate",
    "atan_surrogate",
    "boxcar_surrogate",
    "straight_through_surrogate",
    "gradcheck",
    "Function",
    "FunctionContext",
]
