"""Spike activation with surrogate gradients.

The forward pass of a spiking neuron is the non-differentiable Heaviside
step ``S = 1[V - Vthr > 0]`` (paper Fig. 5a).  Surrogate-gradient learning
replaces the step's zero-almost-everywhere derivative with a smooth
pseudo-derivative during the backward pass (Fig. 5b).  The paper — and the
SpikingLR comparator it builds on — uses the *fast sigmoid*:

    dS/dx ~= 1 / (scale * |x| + 1)^2

We also provide the arctan, boxcar and straight-through families so the
ablation benches can compare them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ConfigError

__all__ = [
    "SurrogateSpec",
    "fast_sigmoid_surrogate",
    "atan_surrogate",
    "boxcar_surrogate",
    "straight_through_surrogate",
    "spike",
]


@dataclass(frozen=True)
class SurrogateSpec:
    """A named surrogate-gradient family with its pseudo-derivative.

    Attributes
    ----------
    name:
        Identifier used in configs and reports.
    derivative:
        Maps the pre-activation ``x = V - Vthr`` to the pseudo-derivative
        values used in place of the Heaviside derivative.
    """

    name: str
    derivative: Callable[[np.ndarray], np.ndarray]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.derivative(x)


def fast_sigmoid_surrogate(scale: float = 25.0) -> SurrogateSpec:
    """Fast-sigmoid surrogate (paper Fig. 5b): ``1 / (scale*|x| + 1)^2``.

    ``scale=25`` follows the SpikingLR reference configuration.
    """
    if scale <= 0:
        raise ConfigError(f"surrogate scale must be positive, got {scale}")

    def derivative(x: np.ndarray, scale=float(scale)) -> np.ndarray:
        return 1.0 / (scale * np.abs(x) + 1.0) ** 2

    return SurrogateSpec(name=f"fast_sigmoid(scale={scale:g})", derivative=derivative)


def atan_surrogate(alpha: float = 2.0) -> SurrogateSpec:
    """Arctan surrogate: ``alpha / (2 * (1 + (pi/2 * alpha * x)^2))``."""
    if alpha <= 0:
        raise ConfigError(f"surrogate alpha must be positive, got {alpha}")

    def derivative(x: np.ndarray, alpha=float(alpha)) -> np.ndarray:
        return alpha / (2.0 * (1.0 + (np.pi / 2.0 * alpha * x) ** 2))

    return SurrogateSpec(name=f"atan(alpha={alpha:g})", derivative=derivative)


def boxcar_surrogate(width: float = 0.5) -> SurrogateSpec:
    """Boxcar surrogate: constant ``1/width`` inside ``|x| < width/2``."""
    if width <= 0:
        raise ConfigError(f"surrogate width must be positive, got {width}")

    def derivative(x: np.ndarray, width=float(width)) -> np.ndarray:
        return (np.abs(x) < width / 2.0).astype(x.dtype) / width

    return SurrogateSpec(name=f"boxcar(width={width:g})", derivative=derivative)


def straight_through_surrogate() -> SurrogateSpec:
    """Straight-through estimator: pass the gradient unchanged."""

    def derivative(x: np.ndarray) -> np.ndarray:
        return np.ones_like(x)

    return SurrogateSpec(name="straight_through", derivative=derivative)


def spike(membrane_minus_threshold: Tensor, surrogate: SurrogateSpec) -> Tensor:
    """Heaviside forward / surrogate backward (paper Fig. 5).

    Parameters
    ----------
    membrane_minus_threshold:
        ``V - Vthr``; a spike fires where this is strictly positive.
    surrogate:
        The pseudo-derivative family to use in the backward pass.
    """
    x = membrane_minus_threshold
    data = (x.data > 0.0).astype(x.data.dtype)

    def vjp(g, a=x.data, deriv=surrogate.derivative):
        return g * deriv(a)

    return Tensor._make_from_op(data, (x,), (vjp,))
