"""Differentiable functions built on the :class:`Tensor` primitives.

These cover the needs of surrogate-gradient BPTT training: stable
sigmoid/tanh, softmax / log-softmax, the fused cross-entropy used by the
readout layer, and small utilities (one-hot, mse).
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ShapeError

__all__ = [
    "sigmoid",
    "tanh",
    "relu",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "mse_loss",
    "one_hot",
    "dropout_mask",
]


def sigmoid(x: Tensor) -> Tensor:
    """Numerically-stable logistic sigmoid."""
    data = _stable_sigmoid(x.data)
    return Tensor._make_from_op(data, (x,), (lambda g, d=data: g * d * (1.0 - d),))


def _stable_sigmoid(a: np.ndarray) -> np.ndarray:
    out = np.empty_like(a)
    positive = a >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-a[positive]))
    exp_a = np.exp(a[~positive])
    out[~positive] = exp_a / (1.0 + exp_a)
    return out


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    data = np.tanh(x.data)
    return Tensor._make_from_op(data, (x,), (lambda g, d=data: g * (1.0 - d * d),))


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit: ``max(x, 0)``."""
    data = np.maximum(x.data, 0.0)
    mask = (x.data > 0).astype(x.data.dtype)
    return Tensor._make_from_op(data, (x,), (lambda g, m=mask: g * m,))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (shift-stabilized)."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    data = exp / exp.sum(axis=axis, keepdims=True)

    def vjp(g, s=data, axis=axis):
        inner = (g * s).sum(axis=axis, keepdims=True)
        return s * (g - inner)

    return Tensor._make_from_op(data, (x,), (vjp,))


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log of softmax along ``axis`` (fused for stability)."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - log_sum
    soft = np.exp(data)

    def vjp(g, s=soft, axis=axis):
        return g - s * g.sum(axis=axis, keepdims=True)

    return Tensor._make_from_op(data, (x,), (vjp,))


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` ``[N, C]`` and integer targets ``[N]``.

    Fused with log-softmax for stability; the gradient is the classic
    ``(softmax - onehot) / N``.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects [N, C] logits, got shape {logits.shape}")
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ShapeError(
            f"targets shape {targets.shape} incompatible with logits {logits.shape}"
        )
    n, c = logits.shape
    if targets.min() < 0 or targets.max() >= c:
        raise ShapeError(f"target labels must lie in [0, {c}), got range "
                         f"[{targets.min()}, {targets.max()}]")

    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_sum
    loss = -log_probs[np.arange(n), targets].mean()

    def vjp(g, probs=np.exp(log_probs), targets=targets, n=n):
        grad = probs.copy()
        grad[np.arange(n), targets] -= 1.0
        return grad * (g / n)

    return Tensor._make_from_op(np.asarray(loss, dtype=logits.dtype), (logits,), (vjp,))


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target.detach()
    return (diff * diff).mean()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a float32 one-hot matrix ``[N, num_classes]``."""
    labels = np.asarray(labels)
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ShapeError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def dropout_mask(shape, p: float, rng: np.random.Generator) -> np.ndarray:
    """Inverted-dropout mask: zeros with probability ``p``, else ``1/(1-p)``."""
    if not 0.0 <= p < 1.0:
        raise ShapeError(f"dropout probability must be in [0, 1), got {p}")
    keep = (rng.random(shape) >= p).astype(np.float32)
    return keep / (1.0 - p)
