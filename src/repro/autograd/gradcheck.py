"""Numerical gradient verification for the autograd engine.

Used by the test-suite to certify every primitive op: the analytic
gradient from :meth:`Tensor.backward` is compared to central finite
differences computed in float64.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["gradcheck", "numerical_gradient"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-4,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. input ``index``."""
    inputs = [np.asarray(a, dtype=np.float64) for a in inputs]
    base = inputs[index]
    grad = np.zeros_like(base)
    it = np.nditer(base, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = base[idx]

        base[idx] = original + eps
        plus = float(fn(*[Tensor(a) for a in inputs]).data.sum())
        base[idx] = original - eps
        minus = float(fn(*[Tensor(a) for a in inputs]).data.sum())
        base[idx] = original

        grad[idx] = (plus - minus) / (2.0 * eps)
        it.iternext()
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-4,
    atol: float = 1e-3,
    rtol: float = 1e-2,
) -> bool:
    """Verify analytic gradients of ``fn`` against finite differences.

    ``fn`` must accept ``len(inputs)`` tensors and return a tensor of any
    shape; the check differentiates ``sum(fn(...))``.  Raises
    ``AssertionError`` with a diagnostic on mismatch, returns True on
    success (so it can be used directly in ``assert gradcheck(...)``).
    """
    arrays = [np.asarray(a, dtype=np.float64) for a in inputs]
    tensors = [Tensor(a) for a in arrays]
    for t in tensors:
        t.requires_grad = True
    out = fn(*tensors)
    out.sum().backward()

    for i, t in enumerate(tensors):
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, arrays, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
