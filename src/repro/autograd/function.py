"""Raw-kernel tape nodes: the :class:`Function` hook.

Every op in :mod:`repro.autograd.tensor` is a *single* primitive whose
VJP closures capture whatever forward data they need.  That granularity
is exactly what makes long recurrent loops slow: a ``T``-step SNN
simulation builds thousands of tiny tape nodes, and ``backward()`` then
walks them one Python call at a time.

:class:`Function` is the escape hatch.  A subclass implements

- ``forward(ctx, *args, **kwargs)`` — receives **raw numpy arrays** (any
  positional ``Tensor`` argument is unwrapped) and returns one ndarray or
  a tuple of ndarrays.  Anything the backward pass needs is stashed on
  ``ctx`` (``ctx.save_for_backward(...)`` or plain attributes).
- ``backward(ctx, *grad_outputs)`` — receives one upstream-gradient
  array per forward output and returns one gradient (or ``None``) per
  *positional forward argument*, in order.  Non-Tensor arguments must
  map to ``None``.

``Function.apply(*args, **kwargs)`` runs the forward immediately and
records a *single* tape node per output, regardless of how many numpy
operations the forward used internally.  The fused SNN sequence kernels
(:mod:`repro.snn.kernels`) run an entire ``[T, B, N]`` time loop inside
one such node.

Multi-output functions are supported: each output becomes its own
``Tensor`` whose VJPs invoke ``backward`` with zeros substituted for the
gradients of the sibling outputs (correct by linearity of the VJP).
Results are memoised per upstream gradient so a node with several
differentiable parents still runs ``backward`` once, not once per
parent.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.autograd.tensor import Tensor, is_grad_enabled
from repro.errors import GradientError

__all__ = ["Function", "FunctionContext"]


class FunctionContext:
    """Scratch space carried from a Function's forward to its backward.

    ``save_for_backward`` stores arrays in ``saved``; arbitrary extra
    attributes (neuron parameters, flags, ...) may be assigned freely.
    """

    def __init__(self):
        self.saved: tuple = ()
        #: Per-positional-argument flags; backward may skip gradients for
        #: arguments whose flag is False (their VJPs are never invoked).
        self.needs_input_grad: tuple[bool, ...] = ()

    def save_for_backward(self, *arrays) -> None:
        """Stash forward-pass arrays for the backward closure."""
        self.saved = arrays


class Function:
    """Base class for raw-kernel autograd ops (see module docstring)."""

    @staticmethod
    def forward(ctx: FunctionContext, *args, **kwargs):
        """Compute outputs from inputs; subclasses must override."""
        raise NotImplementedError

    @staticmethod
    def backward(ctx: FunctionContext, *grad_outputs):
        """Map output gradients to input gradients; subclasses must override."""
        raise NotImplementedError

    @classmethod
    def apply(cls, *args, **kwargs):
        """Run the forward and record one tape node per output.

        Positional ``Tensor`` arguments are the differentiable inputs;
        they reach ``forward`` as raw ndarrays.  Returns a ``Tensor``
        (single-output forward) or a tuple of Tensors.
        """
        ctx = FunctionContext()
        ctx.needs_input_grad = tuple(
            isinstance(a, Tensor) and a.requires_grad and is_grad_enabled()
            for a in args
        )
        raw = tuple(a.data if isinstance(a, Tensor) else a for a in args)
        outputs = cls.forward(ctx, *raw, **kwargs)
        single = not isinstance(outputs, tuple)
        outs = (outputs,) if single else tuple(outputs)

        tensor_positions = [i for i, a in enumerate(args) if isinstance(a, Tensor)]
        parents = tuple(args[i] for i in tensor_positions)
        if not (is_grad_enabled() and any(p.requires_grad for p in parents)):
            wrapped = tuple(Tensor(o) for o in outs)
            return wrapped[0] if single else wrapped

        # Memoise the full backward per (output, upstream-grad) pair so
        # each parent's VJP reuses one backward invocation.  Holding a
        # reference to the gradient array keeps its id() stable.
        memo: dict[str, Any] = {"key": None, "grad_ref": None, "grads": None}
        num_args = len(args)

        def run_backward(out_index: int, grad: np.ndarray) -> tuple:
            key = (out_index, id(grad))
            if memo["key"] != key:
                grad_outputs = tuple(
                    grad if j == out_index else np.zeros_like(o)
                    for j, o in enumerate(outs)
                )
                result = cls.backward(ctx, *grad_outputs)
                if not isinstance(result, tuple):
                    result = (result,)
                if len(result) != num_args:
                    raise GradientError(
                        f"{cls.__name__}.backward returned {len(result)} gradients "
                        f"for {num_args} forward arguments"
                    )
                memo.update(key=key, grad_ref=grad, grads=result)
            return memo["grads"]

        def make_vjp(out_index: int, arg_position: int):
            def vjp(g):
                contribution = run_backward(out_index, g)[arg_position]
                if contribution is None:
                    raise GradientError(
                        f"{cls.__name__}.backward returned None for differentiable "
                        f"argument {arg_position}"
                    )
                return np.asarray(contribution)

            return vjp

        wrapped = tuple(
            Tensor._make_from_op(
                out,
                parents,
                tuple(make_vjp(oi, pos) for pos in tensor_positions),
            )
            for oi, out in enumerate(outs)
        )
        return wrapped[0] if single else wrapped
