"""The :class:`Tensor` type: a numpy array with a reverse-mode tape.

Design notes
------------
The engine is deliberately small and explicit.  A ``Tensor`` wraps an
``np.ndarray`` (float32 by default).  Operations that participate in
differentiation construct their result via :func:`_make_from_op`, passing
the parent tensors and one vector-Jacobian-product (VJP) callable per
parent.  ``backward()`` topologically sorts the recorded graph and
accumulates gradients.

Broadcasting follows numpy semantics; gradients of broadcast operands are
reduced back to the operand's shape by :func:`_unbroadcast`.

Recording can be disabled globally with the :func:`no_grad` context
manager, which the inference paths of the SNN library use so that frozen
layers never build a tape.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import seeding
from repro.errors import GradientError, ShapeError

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "randn",
    "stack",
    "concat",
    "where",
    "maximum",
    "no_grad",
    "is_grad_enabled",
]

DEFAULT_DTYPE = np.float32

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record the backward tape."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables tape recording.

    >>> x = tensor([1.0], requires_grad=True)
    >>> with no_grad():
    ...     y = x * 2
    >>> y.requires_grad
    False
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw array-like, got Tensor")
    return np.asarray(value, dtype=dtype or DEFAULT_DTYPE)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches the pre-broadcast ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum away leading dimensions numpy added during broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were size-1 in the original operand.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable array.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``DEFAULT_DTYPE`` unless it is
        already a floating ndarray.
    requires_grad:
        Whether gradients should flow into this tensor.  Ignored (treated
        as False) inside a :func:`no_grad` block.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_vjps")

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(DEFAULT_DTYPE)
        self.data: np.ndarray = arr
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._vjps: tuple[Callable[[np.ndarray], np.ndarray], ...] = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the wrapped array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions of the wrapped array."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total element count of the wrapped array."""
        return self.data.size

    @property
    def dtype(self):
        """Dtype of the wrapped array."""
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        """Transposed view (reversed axes), differentiable."""
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """The single scalar value of a one-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    @staticmethod
    def _item_error():
        raise ShapeError("item() requires a tensor with exactly one element")

    def detach(self) -> "Tensor":
        """Return a view of the data cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a leaf tensor with copied data and the same grad flag."""
        out = Tensor(self.data.copy())
        out.requires_grad = self.requires_grad
        return out

    def zero_grad(self) -> None:
        """Drop the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Tape plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make_from_op(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        vjps: Sequence[Callable[[np.ndarray], np.ndarray]],
    ) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            kept = [(p, v) for p, v in zip(parents, vjps) if p.requires_grad]
            out._parents = tuple(p for p, _ in kept)
            out._vjps = tuple(v for _, v in kept)
        return out

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode accumulation from this tensor.

        ``grad`` defaults to ones for scalar tensors; non-scalar roots
        must pass an explicit upstream gradient.
        """
        if not self.requires_grad:
            raise GradientError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise GradientError("backward() on non-scalar output requires an explicit gradient")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ShapeError(
                f"upstream gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
            )

        order = self._topo_order()
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.grad is None:
                node.grad = node_grad.copy()
            else:
                node.grad = node.grad + node_grad
            for parent, vjp in zip(node._parents, node._vjps):
                contribution = vjp(node_grad)
                existing = grads.get(id(parent))
                grads[id(parent)] = (
                    contribution if existing is None else existing + contribution
                )

    def _topo_order(self) -> list["Tensor"]:
        """Iterative post-order topological sort, reversed for backward."""
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(_as_array(other, self.dtype))

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data
        return Tensor._make_from_op(
            data,
            (self, other),
            (
                lambda g, s=self.shape: _unbroadcast(g, s),
                lambda g, s=other.shape: _unbroadcast(g, s),
            ),
        )

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data - other.data
        return Tensor._make_from_op(
            data,
            (self, other),
            (
                lambda g, s=self.shape: _unbroadcast(g, s),
                lambda g, s=other.shape: _unbroadcast(-g, s),
            ),
        )

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data
        return Tensor._make_from_op(
            data,
            (self, other),
            (
                lambda g, o=other.data, s=self.shape: _unbroadcast(g * o, s),
                lambda g, o=self.data, s=other.shape: _unbroadcast(g * o, s),
            ),
        )

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data
        return Tensor._make_from_op(
            data,
            (self, other),
            (
                lambda g, o=other.data, s=self.shape: _unbroadcast(g / o, s),
                lambda g, a=self.data, o=other.data, s=other.shape: _unbroadcast(
                    -g * a / (o * o), s
                ),
            ),
        )

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return Tensor._make_from_op(-self.data, (self,), (lambda g: -g,))

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log composition")
        exponent = float(exponent)
        data = self.data**exponent
        return Tensor._make_from_op(
            data,
            (self,),
            (lambda g, a=self.data, e=exponent: g * e * a ** (e - 1.0),),
        )

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data @ other.data
        a, b = self.data, other.data

        def vjp_a(g, a=a, b=b, s=self.shape):
            if b.ndim == 1:
                # (..., n) @ (n,) -> (...); grad_a = outer(g, b)
                return _unbroadcast(np.expand_dims(g, -1) * b, s)
            grad = g @ np.swapaxes(b, -1, -2)
            if a.ndim == 1:
                grad = grad.reshape(a.shape) if grad.ndim == 1 else grad.sum(axis=tuple(range(grad.ndim - 1)))
            return _unbroadcast(grad, s)

        def vjp_b(g, a=a, b=b, s=other.shape):
            if a.ndim == 1:
                if b.ndim == 1:
                    return _unbroadcast(g * a, s)
                return _unbroadcast(np.outer(a, g), s)
            if b.ndim == 1:
                grad = np.swapaxes(a, -1, -2) @ np.expand_dims(g, -1)
                grad = grad[..., 0]
                if grad.ndim > 1:
                    grad = grad.sum(axis=tuple(range(grad.ndim - 1)))
                return _unbroadcast(grad, s)
            return _unbroadcast(np.swapaxes(a, -1, -2) @ g, s)

        return Tensor._make_from_op(data, (self, other), (vjp_a, vjp_b))

    def __rmatmul__(self, other) -> "Tensor":
        return self._coerce(other).__matmul__(self)

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable; return plain bool arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other

    # ------------------------------------------------------------------
    # Unary math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Element-wise ``e**x`` with gradient ``g * exp(x)``."""
        data = np.exp(self.data)
        return Tensor._make_from_op(data, (self,), (lambda g, d=data: g * d,))

    def log(self) -> "Tensor":
        """Element-wise natural log with gradient ``g / x``."""
        data = np.log(self.data)
        return Tensor._make_from_op(data, (self,), (lambda g, a=self.data: g / a,))

    def sqrt(self) -> "Tensor":
        """Element-wise square root with gradient ``g / (2*sqrt(x))``."""
        data = np.sqrt(self.data)
        return Tensor._make_from_op(data, (self,), (lambda g, d=data: g / (2.0 * d),))

    def abs(self) -> "Tensor":
        """Element-wise absolute value with sign-routed gradient."""
        data = np.abs(self.data)
        return Tensor._make_from_op(
            data, (self,), (lambda g, a=self.data: g * np.sign(a),)
        )

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through inside the window."""
        data = np.clip(self.data, low, high)
        inside = ((self.data >= low) & (self.data <= high)).astype(self.data.dtype)
        return Tensor._make_from_op(data, (self,), (lambda g, m=inside: g * m,))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (or all), gradient broadcast back."""
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def vjp(g, shape=self.shape, axis=axis, keepdims=keepdims):
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return np.broadcast_to(g, shape).copy()

        return Tensor._make_from_op(np.asarray(data), (self,), (vjp,))

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean over ``axis`` (or all), gradient scaled by 1/count."""
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = 1
            for ax in axes:
                count *= self.shape[ax]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum reduction; ties share the gradient equally."""
        data = self.data.max(axis=axis, keepdims=keepdims)

        def vjp(g, a=self.data, axis=axis, keepdims=keepdims):
            expanded = data if keepdims or axis is None else np.expand_dims(data, axis)
            mask = (a == expanded).astype(a.dtype)
            counts = mask.sum(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return mask * (g / counts)

        return Tensor._make_from_op(np.asarray(data), (self,), (vjp,))

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Minimum over ``axis`` via ``-max(-x)``."""
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """Reshaped view; gradient reshaped back to the input shape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        return Tensor._make_from_op(
            data, (self,), (lambda g, s=self.shape: g.reshape(s),)
        )

    def transpose(self, *axes) -> "Tensor":
        """Permute axes (reversed by default); gradient permuted back."""
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(np.argsort(axes))
        data = self.data.transpose(axes)
        return Tensor._make_from_op(
            data, (self,), (lambda g, inv=inverse: g.transpose(inv),)
        )

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def vjp(g, shape=self.shape, index=index, dtype=self.data.dtype):
            full = np.zeros(shape, dtype=dtype)
            np.add.at(full, index, g)
            return full

        return Tensor._make_from_op(np.asarray(data), (self,), (vjp,))


# ----------------------------------------------------------------------
# Free functions
# ----------------------------------------------------------------------

def tensor(data, requires_grad: bool = False) -> Tensor:
    """Create a tensor from array-like data."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    """All-zeros tensor of ``shape``."""
    return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    """All-ones tensor of ``shape``."""
    return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def randn(shape, rng: np.random.Generator | None = None, requires_grad: bool = False) -> Tensor:
    """Standard-normal tensor of ``shape`` drawn from ``rng``."""
    rng = rng or seeding.default_rng()
    return Tensor(
        rng.standard_normal(shape).astype(DEFAULT_DTYPE), requires_grad=requires_grad
    )


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = list(tensors)
    if not tensors:
        raise ShapeError("stack() requires at least one tensor")
    data = np.stack([t.data for t in tensors], axis=axis)

    def make_vjp(i):
        def vjp(g, i=i, axis=axis):
            return np.take(g, i, axis=axis)

        return vjp

    return Tensor._make_from_op(
        data, tuple(tensors), tuple(make_vjp(i) for i in range(len(tensors)))
    )


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis (differentiable)."""
    tensors = list(tensors)
    if not tensors:
        raise ShapeError("concat() requires at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    offsets = np.cumsum([0] + [t.shape[axis] for t in tensors])

    def make_vjp(i):
        def vjp(g, i=i, axis=axis, offsets=offsets):
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            return g[tuple(slicer)]

        return vjp

    return Tensor._make_from_op(
        data, tuple(tensors), tuple(make_vjp(i) for i in range(len(tensors)))
    )


def where(condition, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; gradient routes to the selected operand."""
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    cond = cond.astype(bool)
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    data = np.where(cond, a.data, b.data)
    return Tensor._make_from_op(
        data,
        (a, b),
        (
            lambda g, c=cond, s=a.shape: _unbroadcast(np.where(c, g, 0.0), s),
            lambda g, c=cond, s=b.shape: _unbroadcast(np.where(c, 0.0, g), s),
        ),
    )


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum; ties split the gradient equally."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    data = np.maximum(a.data, b.data)
    a_wins = (a.data > b.data).astype(data.dtype)
    ties = (a.data == b.data).astype(data.dtype) * 0.5
    weight_a = a_wins + ties
    weight_b = 1.0 - weight_a
    return Tensor._make_from_op(
        data,
        (a, b),
        (
            lambda g, m=weight_a, s=a.shape: _unbroadcast(g * m, s),
            lambda g, m=weight_b, s=b.shape: _unbroadcast(g * m, s),
        ),
    )
