"""repro — a full reproduction of *Replay4NCL* (DAC 2025).

Replay4NCL is an efficient memory-replay methodology for neuromorphic
continual learning (NCL) on embedded AI systems.  This package implements
the paper's contribution **and every substrate it depends on**, from
scratch on numpy:

- :mod:`repro.autograd` — reverse-mode autodiff with surrogate gradients.
- :mod:`repro.snn` — recurrent LIF spiking layers and networks.
- :mod:`repro.data` — a synthetic Spiking-Heidelberg-Digits generator and
  class-incremental task machinery.
- :mod:`repro.compression` — spike-train codecs (the Fig. 7 subsampling
  codec, bit-packing, address-event).
- :mod:`repro.replaystore` — persistent, byte-budgeted, streaming
  replay-memory engine (sharded on-disk latent buffers).
- :mod:`repro.training` — optimizers, losses, BPTT trainer, metrics.
- :mod:`repro.core` — the NCL methods: naive fine-tuning, the SpikingLR
  state-of-the-art comparator, and Replay4NCL itself; replay
  persistence is configured through one validated ``ReplaySpec``.
- :mod:`repro.scenario` — scenario-first continual learning: a registry
  of lazily-materialised scenarios (single-step, sequential,
  domain-incremental, blurry) and the ``run_scenario`` entry point with
  standard CL metrics.
- :mod:`repro.hw` — analytic latency/energy/latent-memory models for
  embedded neuromorphic targets.
- :mod:`repro.eval` — one experiment per paper figure/table.

Quickstart
----------
>>> from repro.eval import experiments
>>> result = experiments.run("fig11", scale="ci")   # doctest: +SKIP
"""

from repro.config import (
    ExperimentConfig,
    NCLConfig,
    NetworkConfig,
    PretrainConfig,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "NetworkConfig",
    "PretrainConfig",
    "NCLConfig",
    "ExperimentConfig",
    "ReproError",
    "__version__",
]
