"""Atomic file-write helpers shared by every persistence layer.

The crash-safety story of the replay store (``index.json``), the
federation ledger (``federation.json``) and the scenario checkpoint
(``manifest.json`` + network archives) is the same three-step protocol:

1. write the complete new content to a staging file (``<name>.tmp``)
   next to the final path;
2. atomically rename it over the final path (``os.replace`` — atomic on
   POSIX and Windows for same-directory renames);
3. only afterwards remove anything the old content made reachable.

A crash at any point leaves either the previous complete file or the
new complete file — never a truncated mixture.  This module is the one
blessed implementation of steps 1–2; the linter rule ``RPL004``
(:mod:`repro.lint`) forbids persistence modules from open-coding bare
``open(path, "w")`` / ``json.dump`` writes so the protocol cannot be
silently bypassed.

The helpers deliberately do not ``fsync``: the crash model is process
death (preempted worker, ``kill -9``, ``os._exit``), which the rename
protocol already survives, and the callers commit after every scenario
step — per-commit fsyncs would dominate small-step streaming runs.

Concurrency primitives live here too, because they complete the same
story for *multi-handle* access:

- :class:`FileLock` — an exclusive advisory lock (``fcntl.flock``) on a
  dedicated ``*.lock`` file, held across the read-modify-write of an
  index whose commit point is the atomic rename.  The lock file is
  separate from the index because the index inode changes on every
  rename; a lock taken on the index itself would silently stop
  excluding anyone after the first commit.
- :class:`Pin` / :func:`acquire_pin` / :func:`live_pin_payloads` — a
  crash-safe reader registry.  A reader holds an exclusive ``flock`` on
  its own small pin file for as long as it is alive; writers scan the
  pin directory and try a non-blocking lock on each file: acquiring it
  proves the owner is gone (the kernel released the lock when the
  process died), so the stale pin is reaped, while a lock that would
  block identifies a live reader whose payload (e.g. the store
  generation it snapshot) gates garbage collection.

``fcntl`` is POSIX-only; on platforms without it the primitives degrade
to no-ops (single-process use stays correct, cross-process exclusion is
best-effort), mirroring how advisory locks behave on exotic filesystems.
"""

from __future__ import annotations

import itertools
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

try:  # pragma: no cover - fcntl exists everywhere tier-1 runs
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.errors import ConfigError

__all__ = [
    "TMP_SUFFIX",
    "atomic_open",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "FileLock",
    "locked",
    "Pin",
    "acquire_pin",
    "live_pin_payloads",
]

#: Suffix of the staging file written next to the final path.
TMP_SUFFIX = ".tmp"


@contextmanager
def atomic_open(path: str | Path, mode: str = "w") -> Iterator[IO]:
    """Open a staging file that atomically replaces ``path`` on success.

    Yields a writable handle onto ``<path>.tmp``; when the block exits
    cleanly the handle is flushed, closed, and renamed over ``path`` in
    one atomic step.  If the block raises, the staging file is removed
    and ``path`` is left exactly as it was.

    Args:
        path: Final destination of the write.
        mode: ``"w"`` (text) or ``"wb"`` (binary).

    Raises:
        ConfigError: If ``mode`` is not a plain write mode.
    """
    if mode not in ("w", "wb"):
        raise ConfigError(f"atomic_open supports modes 'w' and 'wb', got {mode!r}")
    path = Path(path)
    staging = path.with_name(path.name + TMP_SUFFIX)
    handle = open(staging, mode, encoding=None if mode == "wb" else "utf-8")
    try:
        yield handle
    except BaseException:
        handle.close()
        staging.unlink(missing_ok=True)
        raise
    handle.flush()
    handle.close()
    os.replace(staging, path)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (write-then-rename)."""
    with atomic_open(path, "wb") as handle:
        handle.write(data)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (write-then-rename)."""
    with atomic_open(path, "w") as handle:
        handle.write(text)


def atomic_write_json(path: str | Path, payload, indent: int = 1) -> None:
    """Atomically replace ``path`` with ``payload`` serialized as JSON.

    The serialization (``indent=1`` plus a trailing newline) matches the
    store index, federation ledger, and checkpoint manifest formats, so
    migrating a call site onto this helper is byte-identical.
    """
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")


# ----------------------------------------------------------------------
# Advisory locking
# ----------------------------------------------------------------------
class FileLock:
    """Exclusive advisory lock on a dedicated lock file.

    Backed by ``fcntl.flock``, whose lock lives on the *open file
    description*: two :class:`FileLock` instances on the same path
    exclude each other whether they belong to different processes or to
    different threads of one process, and a crashed holder's lock is
    released by the kernel automatically.  Locks are advisory — only
    cooperating writers (everything that goes through the store and
    federation mutation paths) are excluded.

    Not re-entrant: acquiring an already-held instance raises, and two
    instances in one thread deadlock like any mutex would.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle: IO | None = None

    @property
    def held(self) -> bool:
        """Whether this instance currently holds the lock."""
        return self._handle is not None

    def acquire(self, blocking: bool = True) -> bool:
        """Take the lock; returns False when non-blocking and contended.

        Raises:
            ConfigError: If this instance already holds the lock.
        """
        if self._handle is not None:
            raise ConfigError(f"lock {self.path} is already held by this handle")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(self.path, "a")
        if fcntl is not None:
            flags = fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB)
            try:
                fcntl.flock(handle.fileno(), flags)
            except OSError:
                handle.close()
                if blocking:
                    raise  # not contention: a real I/O failure
                return False
        self._handle = handle
        return True

    def release(self) -> None:
        """Drop the lock; idempotent.

        The lock file itself is left in place: unlinking it would let a
        later acquirer lock a *new* inode while an old handle still
        holds the vanished one, splitting the mutual exclusion.
        """
        if self._handle is None:
            return
        handle, self._handle = self._handle, None
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        handle.close()

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


@contextmanager
def locked(path: str | Path) -> Iterator[FileLock]:
    """Hold an exclusive :class:`FileLock` on ``path`` for the block."""
    lock = FileLock(path)
    lock.acquire()
    try:
        yield lock
    finally:
        lock.release()


# ----------------------------------------------------------------------
# Crash-safe reader pins
# ----------------------------------------------------------------------
#: Suffix of pin files inside a pin directory.
PIN_SUFFIX = ".pin"

#: Process-local uniquifier for pin file names (pid alone is not enough:
#: one process opens many readers).
_PIN_COUNTER = itertools.count()


class Pin:
    """One held reader pin: a payload file plus a lock held while alive.

    Release explicitly via :meth:`release` (or rely on ``__del__`` /
    garbage collection — closing the file descriptor releases the
    ``flock`` even if the unlink never runs, so a leaked or crashed
    holder degrades to a *stale* pin that any writer reaps).
    """

    def __init__(self, path: Path, handle: IO):
        self.path = path
        self._handle: IO | None = handle

    @property
    def active(self) -> bool:
        """Whether the pin is still held."""
        return self._handle is not None

    def release(self) -> None:
        """Unlink the pin file and drop its lock; idempotent."""
        if self._handle is None:
            return
        handle, self._handle = self._handle, None
        # Unlink before unlocking: a scanner that wins the lock after
        # the unlink sees no file at all rather than a reappearing pin.
        try:
            self.path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - directory vanished
            pass
        if fcntl is not None:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - fd already invalid
                pass
        handle.close()

    def __del__(self):
        self.release()

    def __enter__(self) -> "Pin":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


def acquire_pin(directory: str | Path, payload: dict) -> Pin:
    """Register a live pin in ``directory`` carrying ``payload``.

    The pin file is created, exclusively locked, and only then written,
    so a scanner never mistakes a half-registered pin for a stale one:
    until the lock is held the file either does not exist or fails the
    non-blocking-lock probe and is reaped — in which case registration
    retries with a fresh name.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    while True:
        name = f"reader-{os.getpid()}-{next(_PIN_COUNTER):06d}{PIN_SUFFIX}"
        path = directory / name
        handle = open(path, "a+")
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        # A concurrent reaper may have unlinked (or replaced) the path
        # between open and flock; holding a lock on an unlinked inode
        # pins nothing, so verify the directory entry is still our fd.
        try:
            on_disk = os.stat(path)
        except OSError:
            handle.close()
            continue
        if on_disk.st_ino != os.fstat(handle.fileno()).st_ino:
            handle.close()
            continue
        handle.truncate(0)
        handle.write(json.dumps(payload))
        handle.flush()
        return Pin(path, handle)


def live_pin_payloads(directory: str | Path, reap: bool = True) -> list[dict]:
    """Payloads of every live pin in ``directory``; reaps stale pins.

    A pin whose lock can be acquired non-blocking has no live owner
    (the kernel released it when the owner exited or closed), so it is
    unlinked when ``reap`` is true.  A live pin whose payload cannot be
    parsed (caught mid-write) is reported as ``{}`` — callers must
    treat an empty payload conservatively.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    payloads: list[dict] = []
    for path in sorted(directory.glob(f"*{PIN_SUFFIX}")):
        try:
            handle = open(path, "r")
        except OSError:
            continue  # released between glob and open
        try:
            if fcntl is not None:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    # Lock held elsewhere: a live reader.
                    try:
                        payload = json.loads(handle.read())
                        if not isinstance(payload, dict):
                            payload = {}
                    except (OSError, ValueError):
                        payload = {}
                    payloads.append(payload)
                    continue
            # Lock acquired (or no fcntl): the owner is gone.
            if reap and fcntl is not None:
                path.unlink(missing_ok=True)
        finally:
            handle.close()
    return payloads
