"""Atomic file-write helpers shared by every persistence layer.

The crash-safety story of the replay store (``index.json``), the
federation ledger (``federation.json``) and the scenario checkpoint
(``manifest.json`` + network archives) is the same three-step protocol:

1. write the complete new content to a staging file (``<name>.tmp``)
   next to the final path;
2. atomically rename it over the final path (``os.replace`` — atomic on
   POSIX and Windows for same-directory renames);
3. only afterwards remove anything the old content made reachable.

A crash at any point leaves either the previous complete file or the
new complete file — never a truncated mixture.  This module is the one
blessed implementation of steps 1–2; the linter rule ``RPL004``
(:mod:`repro.lint`) forbids persistence modules from open-coding bare
``open(path, "w")`` / ``json.dump`` writes so the protocol cannot be
silently bypassed.

The helpers deliberately do not ``fsync``: the crash model is process
death (preempted worker, ``kill -9``, ``os._exit``), which the rename
protocol already survives, and the callers commit after every scenario
step — per-commit fsyncs would dominate small-step streaming runs.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

from repro.errors import ConfigError

__all__ = [
    "TMP_SUFFIX",
    "atomic_open",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
]

#: Suffix of the staging file written next to the final path.
TMP_SUFFIX = ".tmp"


@contextmanager
def atomic_open(path: str | Path, mode: str = "w") -> Iterator[IO]:
    """Open a staging file that atomically replaces ``path`` on success.

    Yields a writable handle onto ``<path>.tmp``; when the block exits
    cleanly the handle is flushed, closed, and renamed over ``path`` in
    one atomic step.  If the block raises, the staging file is removed
    and ``path`` is left exactly as it was.

    Args:
        path: Final destination of the write.
        mode: ``"w"`` (text) or ``"wb"`` (binary).

    Raises:
        ConfigError: If ``mode`` is not a plain write mode.
    """
    if mode not in ("w", "wb"):
        raise ConfigError(f"atomic_open supports modes 'w' and 'wb', got {mode!r}")
    path = Path(path)
    staging = path.with_name(path.name + TMP_SUFFIX)
    handle = open(staging, mode, encoding=None if mode == "wb" else "utf-8")
    try:
        yield handle
    except BaseException:
        handle.close()
        staging.unlink(missing_ok=True)
        raise
    handle.flush()
    handle.close()
    os.replace(staging, path)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (write-then-rename)."""
    with atomic_open(path, "wb") as handle:
        handle.write(data)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (write-then-rename)."""
    with atomic_open(path, "w") as handle:
        handle.write(text)


def atomic_write_json(path: str | Path, payload, indent: int = 1) -> None:
    """Atomically replace ``path`` with ``payload`` serialized as JSON.

    The serialization (``indent=1`` plus a trailing newline) matches the
    store index, federation ledger, and checkpoint manifest formats, so
    migrating a call site onto this helper is byte-identical.
    """
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
