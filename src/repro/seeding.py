"""Deterministic random-number management.

All stochastic components of the library (weight init, dataset synthesis,
loader shuffling) draw from :class:`numpy.random.Generator` instances that
are derived from a single experiment seed via :func:`spawn`.  This gives
experiments reproducible yet statistically independent streams: two
components seeded from the same root with different keys never share a
stream, and re-running an experiment with the same seed replays the exact
same draws.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import DataError

__all__ = ["derive_seed", "spawn", "default_rng", "capture_rng", "restore_rng"]

_MAX_SEED = 2**63 - 1


def derive_seed(root_seed: int, key: str) -> int:
    """Derive a child seed from ``root_seed`` and a string ``key``.

    The derivation is a SHA-256 hash of the pair, so child seeds are
    stable across processes and platforms (unlike ``hash()``, which is
    randomized per interpreter).

    >>> derive_seed(0, "weights") == derive_seed(0, "weights")
    True
    >>> derive_seed(0, "weights") != derive_seed(0, "data")
    True
    """
    digest = hashlib.sha256(f"{root_seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % _MAX_SEED


def spawn(root_seed: int, key: str) -> np.random.Generator:
    """Return an independent generator for component ``key``."""
    return np.random.default_rng(derive_seed(root_seed, key))


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a generator; seeded when ``seed`` is given, fresh otherwise."""
    return np.random.default_rng(seed)


def capture_rng(rng: np.random.Generator) -> dict:
    """Snapshot a generator's exact position in its stream.

    The snapshot is a plain JSON-able dict (numpy's bit-generator state:
    algorithm name plus Python integers), so it can ride inside a
    checkpoint manifest.  :func:`restore_rng` rebuilds a generator that
    continues the stream bitwise from the captured position — the
    primitive a mid-step (finer than scenario-step-boundary) checkpoint
    would need; step-boundary checkpoints don't, because every step
    spawns its rngs fresh from the experiment seed (see
    :mod:`repro.scenario.checkpoint`).
    """
    return dict(rng.bit_generator.state)


def restore_rng(state: dict) -> np.random.Generator:
    """Rebuild a generator from a :func:`capture_rng` snapshot.

    Raises:
        DataError: If the snapshot names an unknown bit-generator
            algorithm.
    """
    name = state.get("bit_generator")
    algorithm = getattr(np.random, str(name), None)
    if algorithm is None or not isinstance(algorithm, type):
        raise DataError(f"unknown bit generator in rng snapshot: {name!r}")
    bit_generator = algorithm()
    bit_generator.state = state
    return np.random.Generator(bit_generator)
