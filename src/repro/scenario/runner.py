"""`run_scenario`: one entry point from scenario name to CL metrics.

Ties the redesign together: resolve the scenario (by name or instance)
and the method (by registry name or factory), pre-train on the first
step's base data, chain one NCL run per step — optionally store-backed
through a per-step :class:`~repro.replaystore.federation.FederatedReplayStore`
governed by a single :class:`~repro.core.replayspec.ReplaySpec` — and
evaluate the network on **every task seen so far after every step**,
producing the accuracy matrix the standard continual-learning metrics
(:mod:`repro.scenario.metrics`) are defined on.

Task-incremental scenarios (steps carrying
:attr:`~repro.scenario.base.ContinualStep.task_classes`) are evaluated
with the task id known at inference: every matrix entry ``R[i, j]`` —
including the pre-training row — is measured with the readout masked to
task ``j``'s class group (:func:`~repro.scenario.metrics.class_mask`
into :meth:`~repro.snn.network.SpikingNetwork.predict`), so average
accuracy, forgetting, and BWT all read under masked inference.
Training is never masked — only evaluation changes between the class-
and task-incremental regimes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro import obs
from repro.config import ExperimentConfig
from repro.core.pipeline import PretrainResult, pretrain
from repro.core.registry import get_method
from repro.core.replayspec import ReplaySpec, resolve_replay_spec
from repro.core.sequential import (
    SequentialResult,
    create_federation,
    run_chained_step,
)
from repro.core.strategies import NCLMethod, NCLResult
from repro.data.datasets import SpikeDataset
from repro.data.synthetic_shd import SyntheticSHD
from repro.errors import ConfigError, DataError
from repro.scenario.base import ContinualStep, Scenario
from repro.scenario.checkpoint import (
    CheckpointState,
    ScenarioCheckpoint,
    run_fingerprint,
)
from repro.scenario.metrics import (
    average_accuracy,
    backward_transfer,
    class_mask,
    forgetting,
)
from repro.scenario.registry import get
from repro.snn.network import SpikingNetwork
from repro.training.metrics import top1_accuracy

__all__ = ["ScenarioResult", "run_scenario"]


@dataclass(frozen=True, eq=False)
class ScenarioResult:
    """Outcome of a full scenario run; generalizes `SequentialResult`.

    Attributes:
        scenario: The scenario's registry name.
        method: The method as it was addressed: the registry name when
            one was passed, otherwise the method's own ``name``
            attribute.
        steps: One :class:`~repro.core.strategies.NCLResult` per
            continual step.
        step_names: The scenario's human-readable step labels.
        accuracy_matrix: ``[S+1, S+1]`` session-by-task top-1 matrix
            (see :mod:`repro.scenario.metrics` for the convention);
            ``NaN`` above the diagonal.  Every entry — including the
            session-0 row — is measured under the *method's NCL
            deployment semantics* (NCL timesteps, adaptive threshold
            from the insertion layer), so column deltas read as actual
            forgetting/transfer, never as the systematic
            pretrain-vs-NCL timestep gap.
        pretrain_accuracy: Base-task accuracy of the pre-trained network
            (``R[0, 0]``, same NCL deployment semantics as the rest of
            the matrix).
        store_root: Federation root when the run was store-backed; None
            when dense.
        task_classes: The final step's per-task class groups when the
            scenario is task-incremental (every matrix entry ``R[i, j]``
            was then measured with the readout masked to
            ``task_classes[j]``); None for task-agnostic scenarios,
            whose matrix is measured unmasked.
        trace: Spans + metrics the run recorded (see :mod:`repro.obs`);
            None unless tracing was enabled (``REPRO_TRACE`` or
            :func:`repro.obs.use_recorder`).
    """

    scenario: str
    method: str
    steps: tuple[NCLResult, ...]
    step_names: tuple[str, ...]
    accuracy_matrix: np.ndarray
    pretrain_accuracy: float
    store_root: str | None = None
    task_classes: tuple[tuple[int, ...], ...] | None = None
    trace: obs.TraceReport | None = None

    @property
    def task_incremental(self) -> bool:
        """Whether the matrix was measured under per-task readout masks."""
        return self.task_classes is not None

    # -- standard CL metrics -------------------------------------------
    @property
    def average_accuracy(self) -> float:
        """Mean final accuracy over every task seen (base + all steps)."""
        return average_accuracy(self.accuracy_matrix)

    @property
    def forgetting(self) -> float:
        """Mean (best historical - final) accuracy over non-final tasks."""
        return forgetting(self.accuracy_matrix)

    @property
    def backward_transfer(self) -> float:
        """Mean (final - just-learned) accuracy over non-final tasks."""
        return backward_transfer(self.accuracy_matrix)

    # -- SequentialResult-compatible views -----------------------------
    @property
    def final_network(self) -> SpikingNetwork:
        """Network state after the last step (raises when not retained)."""
        network = self.steps[-1].network
        if network is None:
            raise DataError("final step carries no network")
        return network

    @property
    def old_accuracy_trajectory(self) -> tuple[float, ...]:
        """Old-task accuracy after each step (forgetting accumulation)."""
        return tuple(step.final_old_accuracy for step in self.steps)

    @property
    def new_accuracy_trajectory(self) -> tuple[float, ...]:
        """New-task accuracy after each step (plasticity trajectory)."""
        return tuple(step.final_new_accuracy for step in self.steps)

    def as_sequential(self) -> SequentialResult:
        """The plain multi-step view (drops the matrix and metrics)."""
        return SequentialResult(steps=self.steps, store_root=self.store_root)

    def describe(self) -> str:
        """Multi-line human-readable summary of the run."""
        lines = [
            f"scenario {self.scenario!r} x method {self.method!r}: "
            f"{len(self.steps)} step(s)",
            f"  pretrain: base accuracy {self.pretrain_accuracy:.3f}",
        ]
        for name, step in zip(self.step_names, self.steps):
            lines.append(
                f"  {name}: old={step.final_old_accuracy:.3f} "
                f"new={step.final_new_accuracy:.3f} "
                f"overall={step.final_overall_accuracy:.3f}"
            )
        if self.task_incremental:
            lines.append(
                "  task-incremental eval: readout masked to each task's "
                f"classes ({len(self.task_classes)} tasks)"
            )
        lines.append(
            f"  average accuracy {self.average_accuracy:.3f} | "
            f"forgetting {self.forgetting:+.3f} | "
            f"backward transfer {self.backward_transfer:+.3f}"
        )
        if self.store_root is not None:
            lines.append(f"  replay federation: {self.store_root}")
        return "\n".join(lines)


def _task_accuracy(
    network: SpikingNetwork,
    dataset: SpikeDataset,
    timesteps: int,
    method: NCLMethod,
    mask: np.ndarray | None = None,
) -> float:
    """Top-1 on one task's test set under the method's deployment semantics.

    Matches the evaluators inside :meth:`NCLMethod.run`: the frozen
    front keeps its static pre-trained threshold; adaptive thresholds
    apply from the insertion layer up.  ``mask`` restricts the readout
    to the active task's classes (task-incremental inference); ``None``
    evaluates over the full label space.
    """
    predictions = network.predict(
        dataset.to_dense(timesteps),
        controller=method.make_controller(),
        controller_from_layer=method.insertion_layer(),
        class_mask=mask,
    )
    return top1_accuracy(predictions, dataset.labels)


def _step_masks(
    step: ContinualStep, num_tasks: int, num_classes: int, task_aware: bool
) -> "list[np.ndarray | None]":
    """Per-task readout masks for one evaluation row (None = unmasked).

    A scenario is task-incremental iff its *first* step carries
    ``task_classes``; every later step must then carry one group per
    task seen so far (``num_tasks`` of them) — a scenario that flips
    mid-stream, or under-/over-counts its tasks, is malformed.
    """
    if not task_aware:
        if step.task_classes is not None:
            raise DataError(
                f"step {step.index} carries task_classes but the scenario's "
                "first step did not — task membership must be declared from "
                "the start"
            )
        return [None] * num_tasks
    if step.task_classes is None:
        raise DataError(
            f"step {step.index} carries no task_classes but the scenario's "
            "first step did — task membership must cover every step"
        )
    if len(step.task_classes) != num_tasks:
        raise DataError(
            f"step {step.index} declares {len(step.task_classes)} task "
            f"class groups, expected {num_tasks} (base task + one per step "
            "seen so far)"
        )
    return [class_mask(group, num_classes) for group in step.task_classes]


def _reopen_federation(replay: ReplaySpec, recorded: dict | None):
    """Open the federation of a resumed store-backed run and verify it.

    The checkpoint manifest records the federation's member list and
    rebalance counter at commit time; a federation on disk that has
    since diverged (extra members from a crash inside the tiny
    adopt-to-commit window, a rewound counter, manual edits) cannot be
    continued bitwise and is rejected with a clear error instead of
    silently producing a forked trajectory.
    """
    from repro.replaystore.federation import FederatedReplayStore

    federation = FederatedReplayStore.open(Path(replay.store_dir))
    recorded = recorded or {}
    members = [str(name) for name in recorded.get("members", [])]
    rebalances = int(recorded.get("rebalances", 0))
    if list(federation.member_names) != members or federation.rebalances != rebalances:
        raise DataError(
            f"replay federation at {replay.store_dir} diverged from the "
            f"checkpoint (members {list(federation.member_names)} vs recorded "
            f"{members}, rebalances {federation.rebalances} vs {rebalances}); "
            "delete the store and the checkpoint to start over"
        )
    return federation


def _federation_payload(federation) -> dict | None:
    """Manifest slot recording the federation state at commit time."""
    if federation is None:
        return None
    return {
        "members": list(federation.member_names),
        "rebalances": federation.rebalances,
    }


def run_scenario(
    scenario: Scenario | str,
    method: str | Callable[[ExperimentConfig], NCLMethod] = "replay4ncl",
    *,
    scale: str = "ci",
    generator: SyntheticSHD | None = None,
    experiment: ExperimentConfig | None = None,
    pretrained: PretrainResult | SpikingNetwork | None = None,
    replay: ReplaySpec | str | Path | None = None,
    checkpoint: ScenarioCheckpoint | str | Path | None = None,
    resume: bool = False,
    max_steps: int | None = None,
    on_step: Callable[[int, NCLResult], None] | None = None,
) -> ScenarioResult:
    """Run a whole scenario end-to-end and return its CL metrics.

    Args:
        scenario: A registry name (``"single-step"``, ``"sequential"``,
            ``"domain-incremental"``, ``"blurry"``, or anything
            registered via :func:`repro.scenario.register`) or a ready
            :class:`~repro.scenario.base.Scenario` instance (for
            non-default parameters, build one via
            :func:`repro.scenario.get`).
        method: A method-registry name (see :mod:`repro.core.registry`)
            or a factory ``config -> NCLMethod``, called once per step.
        scale: Scale preset supplying ``generator``/``experiment`` when
            those are not given explicitly (see
            :mod:`repro.eval.scale`).
        generator: Dataset generator; defaults to the scale preset's.
        experiment: Experiment config; defaults to the scale preset's.
        pretrained: Skip pre-training by supplying the starting network
            — a :class:`~repro.core.pipeline.PretrainResult` or a bare
            :class:`~repro.snn.network.SpikingNetwork` (then the
            base-task accuracy is measured here).  Must match the
            scenario's first step (same base classes), which is the
            caller's responsibility.
        replay: A :class:`~repro.core.replayspec.ReplaySpec` (or bare
            path, promoted to one).  Store-backed runs persist each
            step's latent data as federation member ``step-<k>`` under
            ``replay.store_dir`` — identical plumbing (and
            bitwise-identical trajectories) to
            :func:`~repro.core.sequential.run_sequential`.
        checkpoint: Checkpoint directory (or a ready
            :class:`~repro.scenario.checkpoint.ScenarioCheckpoint`).
            When given, the run commits its state after pre-training
            and after every completed step — atomically, so a kill at
            any instant leaves a valid checkpoint (see
            :mod:`repro.scenario.checkpoint`).
        resume: Continue from ``checkpoint`` instead of starting over.
            The continuation is bitwise-identical to an uninterrupted
            run: completed steps are skipped (their committed metrics
            and the trained network are restored; ``pretrained`` is
            then ignored), and the stream picks up at the first
            unfinished step.  An empty/absent checkpoint directory is a
            fresh start; a damaged or mismatched one raises
            :class:`~repro.errors.DataError`.  The one restoration
            loss: skipped steps' :class:`NCLResult`\\ s carry no
            network (only the last completed step's weights persist)
            and empty epoch-cost traces — matrices, metrics, and the
            final network are exact.
        max_steps: Stop (cleanly) after this many completed steps even
            if the scenario yields more — with ``checkpoint`` set this
            produces a deliberately interrupted run that ``resume``
            continues (the CLI's ``--stop-after``).
        on_step: Callback ``(step_index, result)`` fired after each
            live step is evaluated (and, when checkpointing, after its
            state is committed).  Restored steps do not fire.  The
            resume test harness uses this to kill the process at exact
            step boundaries.
    """
    if isinstance(scenario, str):
        scenario = get(scenario)
    if not isinstance(scenario, Scenario):
        raise ConfigError(
            f"scenario must be a registry name or Scenario, got "
            f"{type(scenario).__name__}"
        )
    method_label = method if isinstance(method, str) else None
    method_factory = get_method(method) if isinstance(method, str) else method
    if isinstance(method_factory, NCLMethod):
        raise ConfigError(
            "pass a method factory (registry name, class, or config -> "
            "NCLMethod callable), not a method instance: each step needs "
            "a fresh method"
        )
    if resume and checkpoint is None:
        raise ConfigError("resume=True requires a checkpoint directory")
    if max_steps is not None and max_steps <= 0:
        raise ConfigError(f"max_steps must be positive, got {max_steps}")
    store: ScenarioCheckpoint | None = None
    if checkpoint is not None:
        store = (
            checkpoint
            if isinstance(checkpoint, ScenarioCheckpoint)
            else ScenarioCheckpoint(checkpoint)
        )

    if generator is None or experiment is None:
        from repro.eval.scale import get_scale  # lazy: avoids eval<->scenario cycle

        preset = get_scale(scale)
        if experiment is None:
            experiment = preset.experiment
        if generator is None:
            generator = SyntheticSHD(preset.shd, seed=experiment.seed)

    step_iter = iter(scenario.steps(generator, experiment))
    try:
        first = next(step_iter)
    except StopIteration:
        raise DataError(f"scenario {scenario.name!r} yielded no steps") from None

    # Task-incremental iff the first step declares task membership; the
    # base task's row is then masked to its own class group like every
    # later entry of column 0.  Validate the first step's groups *now* —
    # a malformed task-IL scenario must fail before the expensive
    # pre-training and step-0 NCL runs, not after them.
    task_aware = first.task_classes is not None
    num_classes = experiment.network.layer_sizes[-1]
    first_masks = _step_masks(first, 2, num_classes, task_aware)

    # Same promotion + type validation as every other entry point (a
    # bare path becomes a spec; anything else non-spec errors).  Before
    # pre-training: an invalid spec must fail fast, and the checkpoint
    # fingerprint covers the spec's canonical form.
    replay = resolve_replay_spec(replay)
    probe = method_factory(experiment)
    method_name = method_label if method_label is not None else probe.name

    state: CheckpointState | None = None
    fingerprint = ""
    if store is not None:
        fingerprint = run_fingerprint(
            scenario=scenario,
            method=method_name,
            experiment=experiment,
            replay=replay,
        )
        if resume:
            state = store.load(fingerprint=fingerprint)

    recorder = obs.current()
    trace_mark = recorder.mark()
    with obs.span("scenario.run", category="scenario", scenario=scenario.name):
        # ---- session 0: pre-train on the first step's base data (or
        # restore the interrupted run's committed state) ---------------
        if state is not None:
            with obs.span(
                "scenario.restore", category="scenario", steps=state.steps_completed
            ):
                network = SpikingNetwork(
                    experiment.network, seed=experiment.seed
                )
                network.load_state_dict(state.network_state)
                pretrain_accuracy = state.pretrain_accuracy
            federation = (
                _reopen_federation(replay, state.federation)
                if replay is not None and replay.store_backed
                else None
            )
        else:
            with obs.span("scenario.pretrain", category="scenario"):
                if pretrained is None:
                    pretrained = pretrain(experiment, first.split)
                if isinstance(pretrained, PretrainResult):
                    network = pretrained.network
                else:
                    network = pretrained
                # R[0, 0] under the same deployment semantics as every
                # later row: the pretrain-time test accuracy (full
                # pretrain timesteps, static threshold) would fold the
                # systematic timestep-reduction gap into the base
                # task's forgetting/BWT.
                pretrain_mask = first_masks[0]
                pretrain_accuracy = _task_accuracy(
                    network,
                    first.split.pretrain_test,
                    probe.ncl_timesteps(),
                    probe,
                    mask=pretrain_mask,
                )
            federation = create_federation(replay)
            if store is not None:
                # Commit session 0 so a kill during the first step never
                # pays for pre-training twice.
                store.save(
                    fingerprint=fingerprint,
                    scenario=scenario.name,
                    method=method_name,
                    steps_completed=0,
                    pretrain_accuracy=pretrain_accuracy,
                    step_names=[],
                    rows=[],
                    results=[],
                    network=network,
                    federation=_federation_payload(federation),
                )

        # ---- sessions 1..S: one NCL run per step, then evaluate all
        # tasks seen so far
        task_tests: list[SpikeDataset] = [first.split.pretrain_test]
        results: list[NCLResult] = []
        step_names: list[str] = []
        rows: list[list[float]] = []

        final_task_classes: tuple[tuple[int, ...], ...] | None = None
        step = first
        reentry = False
        if state is not None:
            # Fast-forward the lazy stream past the committed steps:
            # splits are rebuilt (deterministically) only as far as the
            # evaluation sets the remaining steps will score against.
            results = list(state.results)
            step_names = list(state.step_names)
            rows = [list(row) for row in state.rows]
            if results:
                results[-1].network = network
            for k in range(state.steps_completed):
                if step is None:
                    raise DataError(
                        f"checkpoint records {state.steps_completed} completed "
                        f"steps but the scenario yielded only {k}"
                    )
                if step.name != state.step_names[k]:
                    raise DataError(
                        f"checkpoint step {k} was {state.step_names[k]!r} but "
                        f"the scenario now yields {step.name!r} — the stream "
                        "changed under the checkpoint"
                    )
                task_tests.append(step.split.new_test)
                final_task_classes = step.task_classes
                step = next(step_iter, None)
            # The step being re-run may have left a partial member store
            # behind (killed after the member was written, before its
            # commit); the re-run must be free to overwrite it.
            reentry = federation is not None
        while step is not None:
            if max_steps is not None and len(results) >= max_steps:
                break
            with obs.span(
                "scenario.step", category="scenario", index=step.index, step=step.name
            ):
                ncl_method = method_factory(experiment)
                step_replay = replay
                if reentry:
                    step_replay = dataclasses.replace(replay, overwrite=True)
                    reentry = False
                result = run_chained_step(
                    ncl_method,
                    network,
                    step.split,
                    index=step.index,
                    replay=step_replay,
                    federation=federation,
                )
                network = result.network
                results.append(result)
                step_names.append(step.name)

                task_tests.append(step.split.new_test)
                masks = _step_masks(step, len(task_tests), num_classes, task_aware)
                final_task_classes = step.task_classes
                timesteps = ncl_method.ncl_timesteps()
                with obs.span(
                    "scenario.eval", category="scenario", tasks=len(task_tests)
                ):
                    rows.append(
                        [
                            _task_accuracy(
                                network, dataset, timesteps, ncl_method, mask=mask
                            )
                            for dataset, mask in zip(task_tests, masks)
                        ]
                    )
                if store is not None:
                    with obs.span(
                        "scenario.checkpoint", category="scenario", index=step.index
                    ):
                        store.save(
                            fingerprint=fingerprint,
                            scenario=scenario.name,
                            method=method_name,
                            steps_completed=len(results),
                            pretrain_accuracy=pretrain_accuracy,
                            step_names=step_names,
                            rows=rows,
                            results=results,
                            network=network,
                            federation=_federation_payload(federation),
                        )
            if on_step is not None:
                on_step(step.index, result)
            step = next(step_iter, None)

        sessions = len(results) + 1
        matrix = np.full((sessions, sessions), np.nan)
        matrix[0, 0] = pretrain_accuracy
        for i, row in enumerate(rows, start=1):
            matrix[i, : len(row)] = row

    trace = obs.TraceReport.capture(recorder, trace_mark)
    obs.maybe_export()
    return ScenarioResult(
        scenario=scenario.name,
        method=method_name,
        steps=tuple(results),
        step_names=tuple(step_names),
        accuracy_matrix=matrix,
        pretrain_accuracy=pretrain_accuracy,
        store_root=str(replay.store_dir) if federation is not None else None,
        task_classes=final_task_classes,
        trace=trace,
    )
