"""Name registry mapping scenario names to scenario factories.

Mirrors the method registry in :mod:`repro.core.registry`: a *scenario
factory* is any callable returning a :class:`~repro.scenario.base.Scenario`
(typically the scenario class itself); :func:`get` instantiates one,
forwarding keyword arguments, and verifies the result structurally
satisfies the protocol.  The five built-ins register on import of
:mod:`repro.scenario`.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.scenario.base import Scenario

__all__ = ["register", "get", "available"]

_SCENARIOS: dict[str, Callable[..., Scenario]] = {}


def register(name: str, factory: Callable[..., Scenario]) -> Callable[..., Scenario]:
    """Register ``factory`` under ``name`` (re-registration replaces).

    Returns the factory, so the call composes with class definitions::

        register("my-scenario", MyScenario)
    """
    if not name or not isinstance(name, str):
        raise ConfigError(f"scenario name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise ConfigError(f"scenario factory for {name!r} must be callable")
    _SCENARIOS[name] = factory
    return factory


def get(name: str, **kwargs) -> Scenario:
    """Instantiate the scenario registered under ``name``.

    ``kwargs`` are forwarded to the factory (e.g. ``get("sequential",
    steps_count=3)``).  Raises :class:`~repro.errors.ConfigError` for unknown
    names and for factories whose product does not satisfy the
    :class:`~repro.scenario.base.Scenario` protocol.
    """
    try:
        factory = _SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; available: {available()}"
        ) from None
    scenario = factory(**kwargs)
    if not isinstance(scenario, Scenario):
        raise ConfigError(
            f"factory for {name!r} produced {type(scenario).__name__}, which "
            "does not satisfy the Scenario protocol (name/describe/steps)"
        )
    return scenario


def available() -> list[str]:
    """Sorted names of every registered scenario."""
    return sorted(_SCENARIOS)
