"""Standard continual-learning metrics over an accuracy matrix.

The whole trajectory of a scenario run is summarised by one matrix
``R`` of shape ``[S+1, S+1]`` for ``S`` continual steps: *session* 0 is
pre-training and session ``i >= 1`` is continual step ``i-1``; *task* 0
is the pre-training base and task ``j >= 1`` is the data arriving at
step ``j-1``.  ``R[i, j]`` is top-1 accuracy on task ``j``'s test set
after session ``i``; entries above the diagonal (tasks not yet seen)
are ``NaN``.

From it, the three standard summary numbers (GEM / Riemannian-walk
conventions):

- **average accuracy** — mean of the final row: how good the final
  network is across everything it ever saw.
- **forgetting** — for each non-final task, the gap between its best
  historical accuracy and its final accuracy, averaged; >= 0 up to
  noise, and 0 means nothing learned was lost.
- **backward transfer (BWT)** — mean of ``R[S, j] - R[j, j]``: how much
  *later* learning changed each task relative to right after it was
  learned.  Negative BWT is forgetting; positive means later steps
  improved earlier tasks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError

__all__ = ["average_accuracy", "forgetting", "backward_transfer", "class_mask"]


def class_mask(classes, num_classes: int) -> np.ndarray:
    """Boolean readout mask ``[num_classes]`` selecting ``classes``.

    The bridge from a task's class group (as scenarios carry it in
    :attr:`~repro.scenario.base.ContinualStep.task_classes`) to the
    ``class_mask`` argument of
    :meth:`~repro.snn.network.SpikingNetwork.predict` — task-incremental
    evaluation restricts each task's inference to its own label space.
    """
    if num_classes <= 0:
        raise DataError(f"num_classes must be positive, got {num_classes}")
    indices = np.unique(np.asarray(list(classes), dtype=np.int64))
    if indices.size == 0:
        raise DataError("class_mask needs at least one class")
    if indices.min() < 0 or indices.max() >= num_classes:
        raise DataError(
            f"class ids must lie in [0, {num_classes}), got "
            f"[{indices.min()}, {indices.max()}]"
        )
    mask = np.zeros(num_classes, dtype=bool)
    mask[indices] = True
    return mask


def _validated(matrix) -> np.ndarray:
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] != m.shape[1] or m.shape[0] < 1:
        raise DataError(
            f"accuracy matrix must be square [S+1, S+1], got shape {m.shape}"
        )
    lower = np.tril_indices(m.shape[0])
    seen = m[lower]
    if not np.all(np.isfinite(seen)):
        raise DataError("accuracy matrix has non-finite entries on/below the diagonal")
    if seen.min() < 0.0 or seen.max() > 1.0:
        raise DataError(
            f"accuracies must lie in [0, 1], got range "
            f"[{seen.min():.3f}, {seen.max():.3f}]"
        )
    return m


def average_accuracy(matrix) -> float:
    """Mean final-session accuracy over all tasks (``mean_j R[S, j]``)."""
    m = _validated(matrix)
    return float(np.mean(m[-1, :]))


def forgetting(matrix) -> float:
    """Mean over non-final tasks of (best historical - final) accuracy.

    ``f_j = max_{i in [j, S-1]} R[i, j] - R[S, j]`` averaged over tasks
    ``j < S``; 0.0 for a single-session matrix (nothing to forget).
    """
    m = _validated(matrix)
    sessions = m.shape[0]
    if sessions == 1:
        return 0.0
    gaps = []
    for j in range(sessions - 1):
        best = np.max(m[j : sessions - 1, j])
        gaps.append(best - m[-1, j])
    return float(np.mean(gaps))


def backward_transfer(matrix) -> float:
    """Mean over non-final tasks of (final - just-learned) accuracy.

    ``BWT = mean_{j < S} (R[S, j] - R[j, j])``; 0.0 for a
    single-session matrix.  Negative values quantify forgetting.
    """
    m = _validated(matrix)
    sessions = m.shape[0]
    if sessions == 1:
        return 0.0
    deltas = [m[-1, j] - m[j, j] for j in range(sessions - 1)]
    return float(np.mean(deltas))
