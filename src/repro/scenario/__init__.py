"""Scenario-first continual learning: registry, built-ins, one run API.

The paper evaluates a single continual step (19 classes -> +1), but the
same replay machinery serves every continual setting — class-, domain-,
and task-incremental, online/blurry streams.  This package makes the
*scenario* the unit of configuration:

- :class:`~repro.scenario.base.Scenario` — a protocol that lazily
  yields :class:`~repro.scenario.base.ContinualStep` s (a
  :class:`~repro.data.tasks.ClassIncrementalSplit` plus per-step
  metadata).
- a name registry (:func:`register` / :func:`get` / :func:`available`)
  with built-ins: ``single-step`` (the paper's protocol), ``sequential``
  (a stream of new classes), ``task-incremental`` (the same stream with
  the task id known at inference — per-task readout masks),
  ``stationary`` (the degenerate combinator substrate),
  ``domain-incremental`` (fixed classes, drifting input statistics),
  ``blurry`` (overlapping class boundaries), and ``streaming``
  (single-pass chunked task streams with anytime evaluation).
- scenario combinators (:mod:`repro.scenario.combinators`) —
  :func:`with_drift`, :func:`with_blur`, :func:`with_task_masks`,
  :func:`with_class_repetition`, :func:`with_label_noise`: lazy
  wrappers that impose a regime on *any* base scenario and nest freely
  (``domain-incremental`` and ``blurry`` are thin aliases over them).
- :func:`run_scenario` — one entry point: pre-train, chain one NCL run
  per step (optionally store-backed via a single
  :class:`~repro.core.replayspec.ReplaySpec`), and score the whole
  trajectory with the standard CL metrics
  (:mod:`repro.scenario.metrics`).  With ``checkpoint=`` the run
  commits its state after every step (atomic, versioned —
  :mod:`repro.scenario.checkpoint`) and ``resume=True`` continues an
  interrupted run bitwise-identically.

Quickstart
----------
>>> from repro.scenario import run_scenario
>>> result = run_scenario("sequential", "replay4ncl", scale="ci")  # doctest: +SKIP
>>> print(result.describe())                                       # doctest: +SKIP
"""

from repro.scenario.base import ContinualStep, Scenario
from repro.scenario.builtin import (  # importing registers the built-ins
    BlurryScenario,
    DomainIncrementalScenario,
    SequentialScenario,
    SingleStepScenario,
    StationaryScenario,
    StreamingScenario,
    TaskIncrementalScenario,
)
from repro.scenario.checkpoint import (
    CheckpointState,
    ScenarioCheckpoint,
    run_fingerprint,
)
from repro.scenario.combinators import (
    with_blur,
    with_class_repetition,
    with_drift,
    with_label_noise,
    with_task_masks,
)
from repro.scenario.metrics import (
    average_accuracy,
    backward_transfer,
    class_mask,
    forgetting,
)
from repro.scenario.registry import available, get, register
from repro.scenario.runner import ScenarioResult, run_scenario

__all__ = [
    "ContinualStep",
    "Scenario",
    "register",
    "get",
    "available",
    "SingleStepScenario",
    "SequentialScenario",
    "TaskIncrementalScenario",
    "StationaryScenario",
    "DomainIncrementalScenario",
    "BlurryScenario",
    "StreamingScenario",
    "with_drift",
    "with_blur",
    "with_task_masks",
    "with_class_repetition",
    "with_label_noise",
    "ScenarioCheckpoint",
    "CheckpointState",
    "run_fingerprint",
    "average_accuracy",
    "forgetting",
    "backward_transfer",
    "class_mask",
    "ScenarioResult",
    "run_scenario",
]
