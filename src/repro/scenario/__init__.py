"""Scenario-first continual learning: registry, built-ins, one run API.

The paper evaluates a single continual step (19 classes -> +1), but the
same replay machinery serves every continual setting — class-, domain-,
and task-incremental, online/blurry streams.  This package makes the
*scenario* the unit of configuration:

- :class:`~repro.scenario.base.Scenario` — a protocol that lazily
  yields :class:`~repro.scenario.base.ContinualStep` s (a
  :class:`~repro.data.tasks.ClassIncrementalSplit` plus per-step
  metadata).
- a name registry (:func:`register` / :func:`get` / :func:`available`)
  with five built-ins: ``single-step`` (the paper's protocol),
  ``sequential`` (a stream of new classes), ``task-incremental`` (the
  same stream with the task id known at inference — per-task readout
  masks), ``domain-incremental`` (fixed classes, drifting input
  statistics), and ``blurry`` (overlapping class boundaries).
- :func:`run_scenario` — one entry point: pre-train, chain one NCL run
  per step (optionally store-backed via a single
  :class:`~repro.core.replayspec.ReplaySpec`), and score the whole
  trajectory with the standard CL metrics
  (:mod:`repro.scenario.metrics`).

Quickstart
----------
>>> from repro.scenario import run_scenario
>>> result = run_scenario("sequential", "replay4ncl", scale="ci")  # doctest: +SKIP
>>> print(result.describe())                                       # doctest: +SKIP
"""

from repro.scenario.base import ContinualStep, Scenario
from repro.scenario.builtin import (  # importing registers the built-ins
    BlurryScenario,
    DomainIncrementalScenario,
    SequentialScenario,
    SingleStepScenario,
    TaskIncrementalScenario,
)
from repro.scenario.metrics import (
    average_accuracy,
    backward_transfer,
    class_mask,
    forgetting,
)
from repro.scenario.registry import available, get, register
from repro.scenario.runner import ScenarioResult, run_scenario

__all__ = [
    "ContinualStep",
    "Scenario",
    "register",
    "get",
    "available",
    "SingleStepScenario",
    "SequentialScenario",
    "TaskIncrementalScenario",
    "DomainIncrementalScenario",
    "BlurryScenario",
    "average_accuracy",
    "forgetting",
    "backward_transfer",
    "class_mask",
    "ScenarioResult",
    "run_scenario",
]
