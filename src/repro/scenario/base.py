"""The `Scenario` protocol and its `ContinualStep` unit of work.

A *scenario* describes the shape of a continual-learning problem —
which data arrives when — independently of the method that learns it
and of the replay plumbing that stores it.  It is a lazy factory: a
scenario object holds only its parameters; datasets materialise
step-by-step when :meth:`Scenario.steps` is iterated, so an
arbitrarily long stream never needs all its steps resident at once.

Every step reuses :class:`~repro.data.tasks.ClassIncrementalSplit` as
its data container — the four-dataset contract every
:class:`~repro.core.strategies.NCLMethod` already consumes — even for
non-class-incremental settings: a domain-incremental step keeps the
class sets identical and drifts the input statistics, a blurry step
overlaps the class boundaries.  ``info`` carries the per-step metadata
that distinguishes those settings (drift severity, minority mix, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Protocol, runtime_checkable

from repro.config import ExperimentConfig
from repro.data.synthetic_shd import SyntheticSHD
from repro.data.tasks import ClassIncrementalSplit

__all__ = ["ContinualStep", "Scenario"]


@dataclass(frozen=True)
class ContinualStep:
    """One unit of continual learning: a split plus step metadata.

    Attributes:
        index: Position in the stream (0-based).
        split: The step's data, in the shape every NCL method consumes:
            ``pretrain_*`` is the replay source / retention test,
            ``new_*`` is what arrives at this step.
        name: Human-readable step label (``"step-1: +class 4"``).
        info: Scenario-specific metadata (drift severity, blur fraction,
            class layout...).  Purely descriptive — methods never read
            it.
        task_classes: Task membership for task-incremental evaluation,
            or ``None`` (the default) for task-agnostic settings.  When
            set on the step of index ``k``, it holds one class group per
            task seen so far — ``task_classes[0]`` is the pre-training
            base task and ``task_classes[j]`` (``1 <= j <= k+1``) the
            classes that arrived at continual step ``j-1`` — so it
            always has ``k + 2`` groups.
            :func:`~repro.scenario.runner.run_scenario` masks the
            readout to ``task_classes[j]`` when evaluating task ``j``
            (the task id is available at inference, the defining
            property of task-IL).
    """

    index: int
    split: ClassIncrementalSplit
    name: str
    info: dict = field(default_factory=dict)
    task_classes: tuple[tuple[int, ...], ...] | None = None


@runtime_checkable
class Scenario(Protocol):
    """Anything that lazily yields :class:`ContinualStep` s.

    Implementations are plain classes — no registration or inheritance
    required beyond this structural contract:

    - ``name``: the registry/CLI identifier.
    - ``describe()``: a one-line human summary of the setting.
    - ``steps(generator, experiment)``: a lazy iterator of steps.  The
      first step's ``split.pretrain_*`` defines what the network is
      pre-trained on; each subsequent step chains from the previous
      step's trained network.
    """

    name: str

    def describe(self) -> str:
        """One-line summary of the scenario's shape."""
        ...

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Lazily yield the scenario's continual steps, in order."""
        ...
