"""The built-in scenarios.

Continual-learning surveys distinguish several settings by *what
changes* between steps; each built-in maps one onto the shared
:class:`~repro.scenario.base.ContinualStep` contract:

- ``single-step`` — the paper's 19+1 class-incremental evaluation: one
  step, one new class set.
- ``sequential`` — a stream of class-incremental steps (wraps
  :func:`~repro.core.sequential.iter_sequential_splits`).
- ``task-incremental`` — the same class stream, but every step carries
  its task membership (:attr:`ContinualStep.task_classes`), so
  evaluation runs with the task id known and the readout masked to the
  active task's classes (the task-IL regime; training is identical to
  ``sequential`` at the same seed — only inference changes).
- ``stationary`` — the degenerate base stream: the same classes and the
  same clean data at every step.  Useless alone, it exists as the
  canonical substrate for combinators that change the *data* rather
  than the label space (``domain-incremental`` is ``stationary`` +
  :func:`~repro.scenario.combinators.with_drift`).
- ``domain-incremental`` — the label space is fixed; the *input
  statistics* drift step by step (temporal blur, onset jitter, dying
  channels via :func:`~repro.data.transforms.drift_dataset`).
- ``blurry`` — class-incremental with overlapping boundaries: each
  step's stream is dominated by its new classes but carries a minority
  blend of already-seen classes (the online/blurry setting).
- ``streaming`` — the online regime the paper's edge story implies: a
  single pass over each task's data, arriving in small chunks, with the
  task evaluated anytime (after every chunk).

``task-incremental``, ``domain-incremental`` and ``blurry`` are *thin
aliases*: they keep their registry names and parameter surfaces but
delegate ``steps()`` to the scenario combinators
(:mod:`repro.scenario.combinators`) over a plainer base — and stay
bitwise-identical to their pre-combinator implementations at the same
seed (asserted in ``tests/scenario/test_combinators.py``).

All built-ins are lazy: datasets materialise only as ``steps()`` is
iterated — class streams generate step k's datasets only when the
iterator reaches it.  Everything is deterministic given
``(generator, experiment)`` — per-step randomness is spawned from
``experiment.seed``.

Each built-in also declares ``disjoint_eval``: ``True`` promises that
every step's ``new_test`` covers only that step's new classes, disjoint
from the old pool (the conformance suite checks the promise for every
registered scenario that makes it); ``stationary`` and
``domain-incremental`` set it to ``False`` — their "new" task is the
same label space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.config import ExperimentConfig
from repro.core.sequential import iter_sequential_splits
from repro.data.synthetic_shd import SyntheticSHD
from repro.data.tasks import ClassIncrementalSplit, make_class_incremental
from repro.errors import ConfigError, DataError
from repro.scenario.base import ContinualStep
from repro.scenario.combinators import with_blur, with_drift, with_task_masks
from repro.scenario.registry import register

__all__ = [
    "SingleStepScenario",
    "SequentialScenario",
    "TaskIncrementalScenario",
    "StationaryScenario",
    "DomainIncrementalScenario",
    "BlurryScenario",
    "StreamingScenario",
]


@dataclass(frozen=True)
class SingleStepScenario:
    """The paper's evaluation: one continual step adding the held-out classes.

    ``num_pretrain_classes`` overrides the experiment's setting (which
    defaults to ``num_classes - 1`` — exactly one class arrives during
    the CL phase).
    """

    num_pretrain_classes: int | None = None

    name = "single-step"
    disjoint_eval = True

    def describe(self) -> str:
        """One-line summary for ``repro scenario list``."""
        return "one class-incremental step: pre-train on the old classes, +new"

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Yield the single class-incremental step."""
        base = (
            self.num_pretrain_classes
            if self.num_pretrain_classes is not None
            else experiment.num_pretrain_classes
        )
        split = make_class_incremental(
            generator,
            experiment.samples_per_class,
            experiment.test_samples_per_class,
            num_pretrain_classes=base,
        )
        yield ContinualStep(
            index=0,
            split=split,
            name=f"step-0: +classes {list(split.new_classes)}",
            info={
                "old_classes": split.old_classes,
                "new_classes": split.new_classes,
            },
        )


def _default_base_classes(
    generator: SyntheticSHD, steps: int, classes_per_step: int
) -> int:
    """Largest base pool leaving ``steps * classes_per_step`` classes free."""
    base = generator.config.num_classes - steps * classes_per_step
    if base <= 0:
        raise DataError(
            f"{steps} steps x {classes_per_step} classes need more classes "
            f"than the generator's {generator.config.num_classes}"
        )
    return base


@dataclass(frozen=True)
class SequentialScenario:
    """A stream of class-incremental steps (the multi-step stress test).

    Wraps :func:`~repro.core.sequential.make_sequential_splits`: step k
    adds ``classes_per_step`` new classes, and its replay pool covers
    everything seen so far.  ``base_classes`` defaults to every class
    not consumed by the stream.
    """

    steps_count: int = 2
    classes_per_step: int = 1
    base_classes: int | None = None

    name = "sequential"
    disjoint_eval = True

    def __post_init__(self):
        if self.steps_count <= 0:
            raise ConfigError(
                f"steps_count must be positive, got {self.steps_count}"
            )

    def describe(self) -> str:
        """One-line summary for ``repro scenario list``."""
        return (
            f"{self.steps_count} class-incremental steps, "
            f"{self.classes_per_step} new class(es) each"
        )

    def _resolved_base(self, generator: SyntheticSHD) -> int:
        return (
            self.base_classes
            if self.base_classes is not None
            else _default_base_classes(
                generator, self.steps_count, self.classes_per_step
            )
        )

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Yield the class-incremental steps lazily, in stream order."""
        base = self._resolved_base(generator)
        splits = iter_sequential_splits(
            generator,
            experiment.samples_per_class,
            experiment.test_samples_per_class,
            base_classes=base,
            steps=self.steps_count,
            classes_per_step=self.classes_per_step,
        )
        for k, split in enumerate(splits):
            yield ContinualStep(
                index=k,
                split=split,
                name=f"step-{k}: +classes {list(split.new_classes)}",
                info={"new_classes": split.new_classes},
            )


@dataclass(frozen=True)
class TaskIncrementalScenario(SequentialScenario):
    """The ``sequential`` class stream evaluated task-incrementally.

    Standard continual-learning taxonomy (van de Ven & Tolias; the
    neuromorphic-CL surveys) splits incremental class streams into two
    regimes: *class-incremental* (inference must pick among all classes
    seen so far) and *task-incremental* (the task id is available at
    inference, so the readout is masked to the active task's classes).
    Latent-replay systems report both — task-IL is the easier regime
    with the milder forgetting profile.

    Data layout and training are **identical** to
    :class:`SequentialScenario` at the same parameters and seed (the
    splits are bitwise the same; replay and the optimizer never see the
    task ids).  The only difference: every step carries
    :attr:`~repro.scenario.base.ContinualStep.task_classes` — one class
    group per task seen so far, base task first — which
    :func:`~repro.scenario.runner.run_scenario` uses to mask the
    readout per evaluated task.  Masking can only help a task whose
    true class is in its own group, so the task-IL accuracy matrix
    dominates the class-IL one entry-wise for the same trained network.

    A thin alias: ``steps()`` is the parent stream through
    :func:`~repro.scenario.combinators.with_task_masks`.
    """

    name = "task-incremental"
    disjoint_eval = True

    def describe(self) -> str:
        """One-line summary for ``repro scenario list``."""
        return (
            f"{self.steps_count} task-incremental steps, "
            f"{self.classes_per_step} new class(es) each "
            "(task id known at inference: per-task readout masks)"
        )

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Yield the parent stream's steps, decorated with task membership."""
        parent = SequentialScenario(
            steps_count=self.steps_count,
            classes_per_step=self.classes_per_step,
            base_classes=self.base_classes,
        )
        yield from with_task_masks(parent).steps(generator, experiment)


@dataclass(frozen=True)
class StationaryScenario:
    """The same classes and the same clean data at every step.

    The identity element of the scenario algebra: nothing changes
    between steps, so alone it only measures training stability.  Its
    purpose is to serve as the substrate for combinators that transform
    the *data* — ``domain-incremental`` is exactly ``stationary`` under
    :func:`~repro.scenario.combinators.with_drift`.  Each step's split
    carries the clean datasets both as the replay source / retention
    test (``pretrain_*``) and as the arriving task (``new_*``), over
    the full label space.
    """

    steps_count: int = 2

    name = "stationary"
    #: Old and new are the same label space — eval sets intentionally
    #: share classes.
    disjoint_eval = False

    def __post_init__(self):
        if self.steps_count <= 0:
            raise ConfigError(
                f"steps_count must be positive, got {self.steps_count}"
            )

    def describe(self) -> str:
        """One-line summary for ``repro scenario list``."""
        return (
            f"{self.steps_count} steps of the same classes and clean data "
            "(combinator substrate)"
        )

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Yield identical clean steps over the full label space."""
        clean_train = generator.generate_dataset(
            experiment.samples_per_class, split="train"
        )
        clean_test = generator.generate_dataset(
            experiment.test_samples_per_class, split="test"
        )
        all_classes = tuple(range(generator.config.num_classes))
        for k in range(self.steps_count):
            split = ClassIncrementalSplit(
                pretrain_train=clean_train,
                pretrain_test=clean_test,
                new_train=clean_train,
                new_test=clean_test,
                old_classes=all_classes,
                new_classes=all_classes,
            )
            yield ContinualStep(
                index=k,
                split=split,
                name=f"step-{k}: stationary",
                info={},
            )


@dataclass(frozen=True)
class DomainIncrementalScenario:
    """Fixed classes, drifting input statistics.

    The network pre-trains on the *clean* domain over all classes; each
    continual step presents the same classes under a progressively
    harsher domain built from the existing raster transforms
    (:func:`~repro.data.transforms.drift_dataset`): step k applies
    onset jitter up to ``(k+1) * max_shift`` grid bins, channel dropout
    at ``(k+1) * dropout_p`` (capped at 0.45), and — with ``blur`` on —
    temporal blur through a ``grid_steps // (k+2)``-bin rebin cycle.
    Each step's split keeps the clean datasets as the replay source /
    retention test (``pretrain_*``) and carries the drifted ones as the
    arriving task (``new_*``), so "old accuracy" reads as *retention of
    the original domain* and "new accuracy" as *adaptation to the
    drifted one*.

    A thin alias: ``steps()`` is :class:`StationaryScenario` through
    :func:`~repro.scenario.combinators.with_drift`, bitwise-identical
    to the pre-combinator implementation at the same seed.
    """

    steps_count: int = 2
    max_shift: int = 2
    dropout_p: float = 0.05
    blur: bool = True

    name = "domain-incremental"
    #: The "new" task is the same label space under drift — eval sets
    #: intentionally share classes.
    disjoint_eval = False

    def __post_init__(self):
        if self.steps_count <= 0:
            raise ConfigError(
                f"steps_count must be positive, got {self.steps_count}"
            )
        if self.max_shift < 0:
            raise ConfigError(f"max_shift must be >= 0, got {self.max_shift}")
        if not 0.0 <= self.dropout_p < 1.0:
            raise ConfigError(
                f"dropout_p must lie in [0, 1), got {self.dropout_p}"
            )

    def describe(self) -> str:
        """One-line summary for ``repro scenario list``."""
        return (
            f"{self.steps_count} domain-drift steps over fixed classes "
            f"(jitter {self.max_shift}/step, dropout {self.dropout_p:.0%}/step"
            + (", temporal blur)" if self.blur else ")")
        )

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Yield steps of the same classes under increasing drift severity."""
        chain = with_drift(
            StationaryScenario(steps_count=self.steps_count),
            max_shift=self.max_shift,
            dropout_p=self.dropout_p,
            blur=self.blur,
        )
        yield from chain.steps(generator, experiment)


@dataclass(frozen=True)
class BlurryScenario:
    """Class-incremental steps whose class boundaries overlap.

    Online streams rarely partition cleanly: samples of already-seen
    classes keep arriving alongside the new ones.  Each step starts
    from the ``sequential`` layout, then blends a class-stratified
    ``blur_fraction`` of the seen-class pool into the step's training
    stream (labels kept) — the *blurry* continual setting.  Evaluation
    stays disjoint: ``new_test`` holds only the step's new classes.

    A thin alias: ``steps()`` is :class:`SequentialScenario` through
    :func:`~repro.scenario.combinators.with_blur`, bitwise-identical to
    the pre-combinator implementation at the same seed.
    """

    steps_count: int = 2
    classes_per_step: int = 1
    base_classes: int | None = None
    blur_fraction: float = 0.25

    name = "blurry"
    #: The *streams* overlap, but evaluation stays disjoint per task.
    disjoint_eval = True

    def __post_init__(self):
        if self.steps_count <= 0:
            raise ConfigError(
                f"steps_count must be positive, got {self.steps_count}"
            )
        if not 0.0 < self.blur_fraction <= 1.0:
            raise ConfigError(
                f"blur_fraction must lie in (0, 1], got {self.blur_fraction}"
            )

    def describe(self) -> str:
        """One-line summary for ``repro scenario list``."""
        return (
            f"{self.steps_count} overlapping class-incremental steps "
            f"({self.blur_fraction:.0%} seen-class blend in each stream)"
        )

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Yield class-incremental steps with seen-class minority blends."""
        chain = with_blur(
            SequentialScenario(
                steps_count=self.steps_count,
                classes_per_step=self.classes_per_step,
                base_classes=self.base_classes,
            ),
            blur_fraction=self.blur_fraction,
        )
        yield from chain.steps(generator, experiment)


@dataclass(frozen=True)
class StreamingScenario:
    """Online/streaming CL: one pass over each task, in small chunks.

    The regime the paper's embedded-edge story actually implies: data
    arrives as a stream, each recording is seen once, and the learner
    is evaluated *anytime* — not only at task boundaries.  The stream
    brings ``tasks`` class-incremental tasks of ``classes_per_task``
    classes each; every task's training data is partitioned — in
    arrival order, single-pass — into ``chunks_per_task`` disjoint
    chunks, and each chunk is one :class:`ContinualStep`.  The step's
    ``new_test`` is the *whole* task's test set, so
    :func:`~repro.scenario.runner.run_scenario`'s after-every-step
    evaluation reads as anytime evaluation of every task seen so far.

    The replay pool of every chunk covers the classes seen before the
    current task (chunks of the task in progress are new data, not
    replay memory), so ``disjoint_eval`` holds and forgetting metrics
    keep their meaning chunk-by-chunk.  Long streams stay lazy: chunk
    datasets materialise one step at a time, and
    :func:`~repro.scenario.runner.run_scenario`'s checkpointing
    (``checkpoint=``/``resume=``) lets a stream killed at chunk k
    continue bitwise-identically.
    """

    tasks: int = 2
    classes_per_task: int = 1
    chunks_per_task: int = 2
    base_classes: int | None = None

    name = "streaming"
    disjoint_eval = True

    def __post_init__(self):
        if self.tasks <= 0:
            raise ConfigError(f"tasks must be positive, got {self.tasks}")
        if self.classes_per_task <= 0:
            raise ConfigError(
                f"classes_per_task must be positive, got {self.classes_per_task}"
            )
        if self.chunks_per_task <= 0:
            raise ConfigError(
                f"chunks_per_task must be positive, got {self.chunks_per_task}"
            )

    def describe(self) -> str:
        """One-line summary for ``repro scenario list``."""
        return (
            f"single-pass stream: {self.tasks} task(s) x "
            f"{self.chunks_per_task} chunk(s), "
            f"{self.classes_per_task} new class(es) per task, anytime eval"
        )

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Yield one step per (task, chunk), lazily, in stream order."""
        base = (
            self.base_classes
            if self.base_classes is not None
            else _default_base_classes(generator, self.tasks, self.classes_per_task)
        )
        needed = base + self.tasks * self.classes_per_task
        if needed > generator.config.num_classes:
            raise DataError(
                f"stream needs {needed} classes but the generator has "
                f"{generator.config.num_classes}"
            )
        if experiment.samples_per_class * self.classes_per_task < self.chunks_per_task:
            raise DataError(
                f"cannot split {experiment.samples_per_class * self.classes_per_task} "
                f"task samples into {self.chunks_per_task} non-empty chunks"
            )
        index = 0
        for t in range(self.tasks):
            seen = list(range(base + t * self.classes_per_task))
            new = list(
                range(
                    base + t * self.classes_per_task,
                    base + (t + 1) * self.classes_per_task,
                )
            )
            seen_train = generator.generate_dataset(
                experiment.samples_per_class, split="train", classes=seen
            )
            seen_test = generator.generate_dataset(
                experiment.test_samples_per_class, split="test", classes=seen
            )
            task_train = generator.generate_dataset(
                experiment.samples_per_class, split="train", classes=new
            )
            task_test = generator.generate_dataset(
                experiment.test_samples_per_class, split="test", classes=new
            )
            # Single pass: contiguous arrival-order slices, every sample
            # in exactly one chunk.
            bounds = [
                round(c * len(task_train) / self.chunks_per_task)
                for c in range(self.chunks_per_task + 1)
            ]
            for c in range(self.chunks_per_task):
                chunk = task_train.subset(range(bounds[c], bounds[c + 1]))
                yield ContinualStep(
                    index=index,
                    split=ClassIncrementalSplit(
                        pretrain_train=seen_train,
                        pretrain_test=seen_test,
                        new_train=chunk,
                        new_test=task_test,
                        old_classes=tuple(seen),
                        new_classes=tuple(new),
                    ),
                    name=(
                        f"step-{index}: task {t} chunk {c + 1}/"
                        f"{self.chunks_per_task} +classes {new}"
                    ),
                    info={
                        "task": t,
                        "chunk": c,
                        "chunk_samples": len(chunk),
                        "task_boundary": c == 0,
                        "new_classes": tuple(new),
                    },
                )
                index += 1


register("single-step", SingleStepScenario)
register("sequential", SequentialScenario)
register("task-incremental", TaskIncrementalScenario)
register("stationary", StationaryScenario)
register("domain-incremental", DomainIncrementalScenario)
register("blurry", BlurryScenario)
register("streaming", StreamingScenario)
