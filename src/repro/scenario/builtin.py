"""The five built-in scenarios.

Continual-learning surveys distinguish several settings by *what
changes* between steps; each built-in maps one onto the shared
:class:`~repro.scenario.base.ContinualStep` contract:

- ``single-step`` — the paper's 19+1 class-incremental evaluation: one
  step, one new class set.
- ``sequential`` — a stream of class-incremental steps (wraps
  :func:`~repro.core.sequential.iter_sequential_splits`).
- ``task-incremental`` — the same class stream, but every step carries
  its task membership (:attr:`ContinualStep.task_classes`), so
  evaluation runs with the task id known and the readout masked to the
  active task's classes (the task-IL regime; training is identical to
  ``sequential`` at the same seed — only inference changes).
- ``domain-incremental`` — the label space is fixed; the *input
  statistics* drift step by step (temporal blur, onset jitter, dying
  channels via :func:`~repro.data.transforms.drift_dataset`).
- ``blurry`` — class-incremental with overlapping boundaries: each
  step's training stream is dominated by its new classes but carries a
  minority blend of already-seen classes (the online/blurry setting).

All five are lazy: datasets materialise only as ``steps()`` is
iterated — class streams generate step k's datasets only when the
iterator reaches it.  Everything is deterministic given
``(generator, experiment)`` — per-step randomness is spawned from
``experiment.seed``.

Each built-in also declares ``disjoint_eval``: ``True`` promises that
every step's ``new_test`` covers only that step's new classes, disjoint
from the old pool (the conformance suite checks the promise for every
registered scenario that makes it); ``domain-incremental`` sets it to
``False`` — its "new" task is the same label space under drift.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator

from repro.config import ExperimentConfig
from repro.core.sequential import iter_sequential_splits
from repro.data.synthetic_shd import SyntheticSHD
from repro.data.tasks import ClassIncrementalSplit, make_class_incremental
from repro.data.transforms import drift_dataset
from repro.errors import ConfigError, DataError
from repro.scenario.base import ContinualStep
from repro.scenario.registry import register
from repro.seeding import spawn

__all__ = [
    "SingleStepScenario",
    "SequentialScenario",
    "TaskIncrementalScenario",
    "DomainIncrementalScenario",
    "BlurryScenario",
]


@dataclass(frozen=True)
class SingleStepScenario:
    """The paper's evaluation: one continual step adding the held-out classes.

    ``num_pretrain_classes`` overrides the experiment's setting (which
    defaults to ``num_classes - 1`` — exactly one class arrives during
    the CL phase).
    """

    num_pretrain_classes: int | None = None

    name = "single-step"
    disjoint_eval = True

    def describe(self) -> str:
        """One-line summary for ``repro scenario list``."""
        return "one class-incremental step: pre-train on the old classes, +new"

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Yield the single class-incremental step."""
        base = (
            self.num_pretrain_classes
            if self.num_pretrain_classes is not None
            else experiment.num_pretrain_classes
        )
        split = make_class_incremental(
            generator,
            experiment.samples_per_class,
            experiment.test_samples_per_class,
            num_pretrain_classes=base,
        )
        yield ContinualStep(
            index=0,
            split=split,
            name=f"step-0: +classes {list(split.new_classes)}",
            info={
                "old_classes": split.old_classes,
                "new_classes": split.new_classes,
            },
        )


def _default_base_classes(
    generator: SyntheticSHD, steps: int, classes_per_step: int
) -> int:
    """Largest base pool leaving ``steps * classes_per_step`` classes free."""
    base = generator.config.num_classes - steps * classes_per_step
    if base <= 0:
        raise DataError(
            f"{steps} steps x {classes_per_step} classes need more classes "
            f"than the generator's {generator.config.num_classes}"
        )
    return base


@dataclass(frozen=True)
class SequentialScenario:
    """A stream of class-incremental steps (the multi-step stress test).

    Wraps :func:`~repro.core.sequential.make_sequential_splits`: step k
    adds ``classes_per_step`` new classes, and its replay pool covers
    everything seen so far.  ``base_classes`` defaults to every class
    not consumed by the stream.
    """

    steps_count: int = 2
    classes_per_step: int = 1
    base_classes: int | None = None

    name = "sequential"
    disjoint_eval = True

    def __post_init__(self):
        if self.steps_count <= 0:
            raise ConfigError(
                f"steps_count must be positive, got {self.steps_count}"
            )

    def describe(self) -> str:
        """One-line summary for ``repro scenario list``."""
        return (
            f"{self.steps_count} class-incremental steps, "
            f"{self.classes_per_step} new class(es) each"
        )

    def _resolved_base(self, generator: SyntheticSHD) -> int:
        return (
            self.base_classes
            if self.base_classes is not None
            else _default_base_classes(
                generator, self.steps_count, self.classes_per_step
            )
        )

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Yield the class-incremental steps lazily, in stream order."""
        base = self._resolved_base(generator)
        splits = iter_sequential_splits(
            generator,
            experiment.samples_per_class,
            experiment.test_samples_per_class,
            base_classes=base,
            steps=self.steps_count,
            classes_per_step=self.classes_per_step,
        )
        for k, split in enumerate(splits):
            yield ContinualStep(
                index=k,
                split=split,
                name=f"step-{k}: +classes {list(split.new_classes)}",
                info={"new_classes": split.new_classes},
            )


@dataclass(frozen=True)
class TaskIncrementalScenario(SequentialScenario):
    """The ``sequential`` class stream evaluated task-incrementally.

    Standard continual-learning taxonomy (van de Ven & Tolias; the
    neuromorphic-CL surveys) splits incremental class streams into two
    regimes: *class-incremental* (inference must pick among all classes
    seen so far) and *task-incremental* (the task id is available at
    inference, so the readout is masked to the active task's classes).
    Latent-replay systems report both — task-IL is the easier regime
    with the milder forgetting profile.

    Data layout and training are **identical** to
    :class:`SequentialScenario` at the same parameters and seed (the
    splits are bitwise the same; replay and the optimizer never see the
    task ids).  The only difference: every step carries
    :attr:`~repro.scenario.base.ContinualStep.task_classes` — one class
    group per task seen so far, base task first — which
    :func:`~repro.scenario.runner.run_scenario` uses to mask the
    readout per evaluated task.  Masking can only help a task whose
    true class is in its own group, so the task-IL accuracy matrix
    dominates the class-IL one entry-wise for the same trained network.
    """

    name = "task-incremental"
    disjoint_eval = True

    def describe(self) -> str:
        """One-line summary for ``repro scenario list``."""
        return (
            f"{self.steps_count} task-incremental steps, "
            f"{self.classes_per_step} new class(es) each "
            "(task id known at inference: per-task readout masks)"
        )

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Yield the parent stream's steps, decorated with task membership."""
        # One source of truth for the class layout: decorate the parent
        # stream with task membership read off each split (task 0 is the
        # first step's base pool; task j > 0 is step j-1's new classes).
        groups: list[tuple[int, ...]] = []
        for step in super().steps(generator, experiment):
            if not groups:
                groups.append(step.split.old_classes)
            groups.append(step.split.new_classes)
            yield dataclasses.replace(
                step,
                name=f"step-{step.index}: +task {list(step.split.new_classes)}",
                task_classes=tuple(groups),
            )


@dataclass(frozen=True)
class DomainIncrementalScenario:
    """Fixed classes, drifting input statistics.

    The network pre-trains on the *clean* domain over all classes; each
    continual step presents the same classes under a progressively
    harsher domain built from the existing raster transforms
    (:func:`~repro.data.transforms.drift_dataset`): step k applies
    onset jitter up to ``(k+1) * max_shift`` grid bins, channel dropout
    at ``(k+1) * dropout_p`` (capped at 0.45), and — with ``blur`` on —
    temporal blur through a ``grid_steps // (k+2)``-bin rebin cycle.
    Each step's split keeps the clean datasets as the replay source /
    retention test (``pretrain_*``) and carries the drifted ones as the
    arriving task (``new_*``), so "old accuracy" reads as *retention of
    the original domain* and "new accuracy" as *adaptation to the
    drifted one*.
    """

    steps_count: int = 2
    max_shift: int = 2
    dropout_p: float = 0.05
    blur: bool = True

    name = "domain-incremental"
    #: The "new" task is the same label space under drift — eval sets
    #: intentionally share classes.
    disjoint_eval = False

    def __post_init__(self):
        if self.steps_count <= 0:
            raise ConfigError(
                f"steps_count must be positive, got {self.steps_count}"
            )
        if self.max_shift < 0:
            raise ConfigError(f"max_shift must be >= 0, got {self.max_shift}")
        if not 0.0 <= self.dropout_p < 1.0:
            raise ConfigError(
                f"dropout_p must lie in [0, 1), got {self.dropout_p}"
            )

    def describe(self) -> str:
        """One-line summary for ``repro scenario list``."""
        return (
            f"{self.steps_count} domain-drift steps over fixed classes "
            f"(jitter {self.max_shift}/step, dropout {self.dropout_p:.0%}/step"
            + (", temporal blur)" if self.blur else ")")
        )

    def _severity(self, k: int, grid_steps: int) -> dict:
        return {
            "max_shift": (k + 1) * self.max_shift,
            "dropout_p": min((k + 1) * self.dropout_p, 0.45),
            "blur_steps": max(grid_steps // (k + 2), 8) if self.blur else None,
        }

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Yield steps of the same classes under increasing drift severity."""
        clean_train = generator.generate_dataset(
            experiment.samples_per_class, split="train"
        )
        clean_test = generator.generate_dataset(
            experiment.test_samples_per_class, split="test"
        )
        all_classes = tuple(range(generator.config.num_classes))
        grid = generator.config.grid_steps
        for k in range(self.steps_count):
            severity = self._severity(k, grid)
            rng = spawn(experiment.seed, f"scenario:domain:{k}")
            split = ClassIncrementalSplit(
                pretrain_train=clean_train,
                pretrain_test=clean_test,
                new_train=drift_dataset(clean_train, rng, grid_steps=grid, **severity),
                new_test=drift_dataset(clean_test, rng, grid_steps=grid, **severity),
                old_classes=all_classes,
                new_classes=all_classes,
            )
            yield ContinualStep(
                index=k,
                split=split,
                name=f"step-{k}: domain drift severity {k + 1}",
                info={"domain": k + 1, **severity},
            )


@dataclass(frozen=True)
class BlurryScenario:
    """Class-incremental steps whose class boundaries overlap.

    Online streams rarely partition cleanly: samples of already-seen
    classes keep arriving alongside the new ones.  Each step starts
    from the ``sequential`` layout, then blends a class-stratified
    ``blur_fraction`` of the seen-class pool into the step's training
    stream (labels kept) — the *blurry* continual setting.  Evaluation
    stays disjoint: ``new_test`` holds only the step's new classes.
    """

    steps_count: int = 2
    classes_per_step: int = 1
    base_classes: int | None = None
    blur_fraction: float = 0.25

    name = "blurry"
    #: The *streams* overlap, but evaluation stays disjoint per task.
    disjoint_eval = True

    def __post_init__(self):
        if self.steps_count <= 0:
            raise ConfigError(
                f"steps_count must be positive, got {self.steps_count}"
            )
        if not 0.0 < self.blur_fraction <= 1.0:
            raise ConfigError(
                f"blur_fraction must lie in (0, 1], got {self.blur_fraction}"
            )

    def describe(self) -> str:
        """One-line summary for ``repro scenario list``."""
        return (
            f"{self.steps_count} overlapping class-incremental steps "
            f"({self.blur_fraction:.0%} seen-class blend in each stream)"
        )

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Yield class-incremental steps with seen-class minority blends."""
        base = (
            self.base_classes
            if self.base_classes is not None
            else _default_base_classes(
                generator, self.steps_count, self.classes_per_step
            )
        )
        splits = iter_sequential_splits(
            generator,
            experiment.samples_per_class,
            experiment.test_samples_per_class,
            base_classes=base,
            steps=self.steps_count,
            classes_per_step=self.classes_per_step,
        )
        for k, split in enumerate(splits):
            rng = spawn(experiment.seed, f"scenario:blurry:{k}")
            minority = split.pretrain_train.sample_fraction(self.blur_fraction, rng)
            blurred = dataclasses.replace(
                split, new_train=split.new_train.concat(minority)
            )
            yield ContinualStep(
                index=k,
                split=blurred,
                name=(
                    f"step-{k}: +classes {list(split.new_classes)} "
                    f"(+{len(minority)} seen-class samples)"
                ),
                info={
                    "new_classes": split.new_classes,
                    "minority_samples": len(minority),
                    "blur_fraction": self.blur_fraction,
                },
            )


register("single-step", SingleStepScenario)
register("sequential", SequentialScenario)
register("task-incremental", TaskIncrementalScenario)
register("domain-incremental", DomainIncrementalScenario)
register("blurry", BlurryScenario)
