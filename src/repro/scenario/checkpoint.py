"""Crash-safe checkpoints for resumable scenario runs.

Long streams die: a 100-step online run on a flaky edge device (or a
preempted CI worker) should continue from where it stopped, and the
continuation must be **bitwise-identical** to the run that was never
interrupted — otherwise resumed results are not comparable to
straight-through ones and every interruption silently forks the
experiment.

The checkpoint granularity is the *scenario step boundary*, and that is
sufficient for exact resumption because of how the training stack keys
its randomness: every NCL step spawns a fresh rng from
``spawn(config.seed, ...)``, builds a fresh optimizer, and trains a
clone — nothing carries across steps except (a) the trained network and
(b) the on-disk replay federation (whose rebalance counter keys its own
rng stream and already persists in the federation index).  Snapshot
those two and the stream's future is a pure function of
``(seed, scenario, step index)``.  Finer-grained (mid-epoch)
checkpointing would additionally need live optimizer and rng state —
:meth:`repro.training.optimizers.Optimizer.state_dict` and
:func:`repro.seeding.capture_rng` provide exactly those snapshots, and
are bitwise round-trip tested, but the step-boundary checkpoint does
not require them.

Layout under the checkpoint directory::

    manifest.json          # versioned, fingerprinted; always valid
    network-step-<k>.npz   # weights after completed step k (0 = pretrain)

Writes are crash-safe by ordering: the new network archive lands first
(a *new* filename — the previous step's archive is untouched), then the
manifest is written to a temp file and atomically renamed over the old
one (`os.replace`), then stale archives are removed.  A crash at any
point leaves the previous manifest pointing at its still-existing
archive; a crash before the first commit leaves no manifest, which
resume treats as a fresh start (absent is not corrupt).

Corruption is never silently absorbed: a manifest that does not parse,
a version or fingerprint mismatch, a missing or truncated archive, or
an archive whose sha256 disagrees with the manifest all raise
:class:`~repro.errors.DataError` — resuming from damaged state must be
an explicit user decision (delete the directory), not an automatic
restart that quietly discards completed work.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.strategies import EpochCost, NCLResult
from repro.errors import DataError
from repro.ioutil import atomic_open, atomic_write_json
from repro.training.metrics import EpochRecord, TrainingHistory

__all__ = [
    "CHECKPOINT_VERSION",
    "MANIFEST_NAME",
    "CheckpointState",
    "ScenarioCheckpoint",
    "run_fingerprint",
]

#: Manifest schema version; bump on any incompatible layout change.
CHECKPOINT_VERSION = 1

#: Filename of the manifest inside the checkpoint directory.
MANIFEST_NAME = "manifest.json"

_STEP_FIELDS = (
    "method",
    "insertion_layer",
    "timesteps",
    "final_old_accuracy",
    "final_new_accuracy",
    "final_overall_accuracy",
    "latent_storage_bytes",
    "latent_stored_frames",
    "replay_store_path",
    "replay_peak_resident_bytes",
)


def run_fingerprint(
    *, scenario: object, method: str, experiment: object, replay: object
) -> str:
    """Identity of a run for checkpoint compatibility.

    Two invocations may share a checkpoint directory only when they
    would compute the same stream: same scenario (parameters included —
    frozen-dataclass ``repr`` covers combinator chains), same method,
    same experiment configuration (seed included), same replay spec.
    """
    payload = json.dumps(
        {
            "scenario": repr(scenario),
            "method": method,
            "experiment": repr(experiment),
            "replay": repr(replay),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


def _serialize_result(result: NCLResult) -> dict:
    """JSON payload of one completed step's :class:`NCLResult`.

    Persists the scalars and the epoch history — everything the
    accuracy matrix, metrics, and summaries read.  Epoch traces
    (``epoch_costs``/``prepare_cost``, hardware-model op counts) and the
    obs trace are deliberately not persisted: they describe *how* the
    interrupted process ran, are only consumed by same-process analysis,
    and resume restores them empty.
    """
    payload = {name: getattr(result, name) for name in _STEP_FIELDS}
    payload["history"] = [dataclasses.asdict(r) for r in result.history.records]
    return payload


def _deserialize_result(payload: dict, network) -> NCLResult:
    """Rebuild a restored step's :class:`NCLResult` from its payload."""
    try:
        history = TrainingHistory(
            records=[EpochRecord(**record) for record in payload["history"]]
        )
        return NCLResult(
            history=history,
            epoch_costs=[],
            prepare_cost=EpochCost(),
            network=network,
            **{name: payload[name] for name in _STEP_FIELDS},
        )
    except (KeyError, TypeError) as error:
        raise DataError(f"checkpoint step payload is malformed: {error}") from None


@dataclass(frozen=True)
class CheckpointState:
    """Parsed, integrity-checked contents of a checkpoint directory.

    Attributes:
        steps_completed: Number of fully completed (trained + evaluated
            + committed) continual steps; 0 means only pre-training
            finished.
        pretrain_accuracy: The committed ``R[0, 0]`` entry.
        step_names: Labels of the completed steps, in stream order.
        rows: Committed accuracy-matrix rows, one per completed step.
        results: Restored :class:`NCLResult` per completed step.  Only
            the last one carries the restored network (earlier steps'
            networks were not persisted); scalars, histories, and the
            matrix are exact.
        network_state: The :meth:`~repro.snn.network.SpikingNetwork.state_dict`
            snapshot taken after the last completed step.
        federation: ``{"members": [...], "rebalances": n}`` recorded at
            commit time for store-backed runs; None for dense runs.
    """

    steps_completed: int
    pretrain_accuracy: float
    step_names: tuple[str, ...]
    rows: tuple[tuple[float, ...], ...]
    results: tuple[NCLResult, ...]
    network_state: dict[str, dict[str, np.ndarray]]
    federation: dict | None


class ScenarioCheckpoint:
    """One run's checkpoint directory (see the module docstring)."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def __repr__(self) -> str:
        return f"ScenarioCheckpoint(root={str(self.root)!r})"

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def _archive_name(self, steps_completed: int) -> str:
        return f"network-step-{steps_completed}.npz"

    def save(
        self,
        *,
        fingerprint: str,
        scenario: str,
        method: str,
        steps_completed: int,
        pretrain_accuracy: float,
        step_names: list[str],
        rows: list[list[float]],
        results: list[NCLResult],
        network,
        federation=None,
    ) -> None:
        """Commit the run's state after ``steps_completed`` steps.

        Atomic at the manifest rename: readers either see the previous
        complete checkpoint or this one, never a mixture.
        """
        self.root.mkdir(parents=True, exist_ok=True)

        archive = self._archive_name(steps_completed)
        flat = {
            f"{layer}/{param}": value
            for layer, params in network.state_dict().items()
            for param, value in params.items()
        }
        with atomic_open(self.root / archive, "wb") as handle:
            np.savez(handle, **flat)
        digest = hashlib.sha256((self.root / archive).read_bytes()).hexdigest()

        manifest = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "scenario": scenario,
            "method": method,
            "steps_completed": steps_completed,
            "pretrain_accuracy": pretrain_accuracy,
            "step_names": list(step_names),
            "rows": [list(row) for row in rows],
            "steps": [_serialize_result(result) for result in results],
            "network_file": archive,
            "network_sha256": digest,
            "federation": federation,
        }
        atomic_write_json(self.root / MANIFEST_NAME, manifest)

        # Only now is the old archive unreachable; drop it (and any
        # strays an earlier crash left behind).
        for stale in self.root.glob("network-step-*.npz"):
            if stale.name != archive:
                stale.unlink()

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def load(self, *, fingerprint: str) -> CheckpointState | None:
        """Read and verify the checkpoint; None when none exists yet.

        Raises:
            DataError: On any damage or mismatch — unparseable or
                incomplete manifest, schema-version or fingerprint
                mismatch, missing/truncated/corrupted network archive.
                Never silently falls back to a fresh start.
        """
        path = self.root / MANIFEST_NAME
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            raise DataError(
                f"checkpoint manifest {path} is unreadable: {error}"
            ) from None
        if not isinstance(manifest, dict):
            raise DataError(f"checkpoint manifest {path} is not a JSON object")

        version = manifest.get("version")
        if version != CHECKPOINT_VERSION:
            raise DataError(
                f"checkpoint at {self.root} has schema version {version!r}, "
                f"this build reads {CHECKPOINT_VERSION}"
            )
        if manifest.get("fingerprint") != fingerprint:
            raise DataError(
                f"checkpoint at {self.root} belongs to a different run "
                "(scenario/method/config/seed/replay fingerprint mismatch); "
                "point --checkpoint-dir elsewhere or delete it to start over"
            )
        try:
            steps_completed = int(manifest["steps_completed"])
            pretrain_accuracy = float(manifest["pretrain_accuracy"])
            step_names = tuple(str(name) for name in manifest["step_names"])
            rows = tuple(
                tuple(float(v) for v in row) for row in manifest["rows"]
            )
            payloads = manifest["steps"]
            archive = str(manifest["network_file"])
            digest = str(manifest["network_sha256"])
            federation = manifest["federation"]
        except (KeyError, TypeError, ValueError) as error:
            raise DataError(
                f"checkpoint manifest {path} is incomplete: {error}"
            ) from None
        if len(step_names) != steps_completed or len(rows) != steps_completed:
            raise DataError(
                f"checkpoint manifest {path} is inconsistent: "
                f"{steps_completed} steps but {len(step_names)} names / "
                f"{len(rows)} matrix rows"
            )
        if len(payloads) != steps_completed:
            raise DataError(
                f"checkpoint manifest {path} is inconsistent: "
                f"{steps_completed} steps but {len(payloads)} step payloads"
            )

        network_state = self._load_archive(archive, digest)
        results = [
            _deserialize_result(payload, None) for payload in payloads
        ]
        return CheckpointState(
            steps_completed=steps_completed,
            pretrain_accuracy=pretrain_accuracy,
            step_names=step_names,
            rows=rows,
            results=tuple(results),
            network_state=network_state,
            federation=federation,
        )

    def _load_archive(
        self, archive: str, digest: str
    ) -> dict[str, dict[str, np.ndarray]]:
        path = self.root / archive
        if not path.exists():
            raise DataError(
                f"checkpoint at {self.root} references missing network "
                f"archive {archive}"
            )
        data = path.read_bytes()
        actual = hashlib.sha256(data).hexdigest()
        if actual != digest:
            raise DataError(
                f"checkpoint network archive {path} is corrupted "
                "(sha256 mismatch — truncated or damaged write)"
            )
        try:
            archive_file = np.load(path, allow_pickle=False)
        except (OSError, ValueError) as error:
            raise DataError(
                f"checkpoint network archive {path} is unreadable: {error}"
            ) from None
        state: dict[str, dict[str, np.ndarray]] = {}
        for key in archive_file.files:
            layer, param = key.split("/", 1)
            state.setdefault(layer, {})[param] = archive_file[key]
        return state
