"""Scenario combinators: compose continual-learning regimes lazily.

The continual-learning surveys catalog their regimes — domain drift,
blurry boundaries, class repetition, label noise, task-aware
evaluation — as *orthogonal modifiers* of an underlying class stream,
yet the first cut of this package hard-coded one built-in scenario per
regime.  This module replaces that pattern with five combinators, each
a lazy wrapper applicable to **any** registered base scenario:

- :func:`with_drift` — drift the arriving data's input statistics with
  step-increasing severity (the domain-incremental regime);
- :func:`with_blur` — blend a class-stratified minority of already-seen
  samples into each step's training stream (the blurry regime);
- :func:`with_task_masks` — decorate steps with task membership so
  evaluation runs task-incrementally (per-task readout masks);
- :func:`with_class_repetition` — re-present classes introduced a fixed
  number of steps earlier (the class-repetition regime);
- :func:`with_label_noise` — flip a fraction of each step's training
  labels to other seen classes (noisy supervision).

Combinators nest: ``with_task_masks(with_blur(get("sequential")))`` is
a blurry stream evaluated with per-task masks.  Every wrapper satisfies
the :class:`~repro.scenario.base.Scenario` protocol structurally, so a
wrapped scenario runs through
:func:`~repro.scenario.runner.run_scenario` and — once registered —
inherits the registry-wide conformance suite.

Laziness and determinism are preserved by construction: each wrapper's
``steps()`` is a generator function that only touches the base
scenario's iterator (and therefore the dataset generator) as it is
advanced, and all randomness is spawned per step from
``experiment.seed`` with a combinator-specific key.  The legacy
``blurry`` and ``domain-incremental`` built-ins are thin aliases over
these combinators and stay bitwise-identical to their pre-combinator
implementations at the same seed (the seed keys ``scenario:blurry:<k>``
and ``scenario:domain:<k>`` are part of that contract).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.config import ExperimentConfig
from repro.data.datasets import SpikeDataset
from repro.data.synthetic_shd import SyntheticSHD
from repro.data.transforms import drift_dataset
from repro.errors import ConfigError
from repro.scenario.base import ContinualStep, Scenario
from repro.seeding import spawn

__all__ = [
    "with_drift",
    "with_blur",
    "with_task_masks",
    "with_class_repetition",
    "with_label_noise",
]


@dataclass(frozen=True)
class _Combinator:
    """Shared shell of every combinator wrapper.

    Holds the wrapped ``base`` scenario and derives ``name`` (base name
    plus the combinator's ``tag``) and ``disjoint_eval`` (propagated:
    no combinator in this module touches the eval sets' label coverage)
    from it.  Subclasses implement :meth:`steps` as a lazy generator.
    """

    base: Scenario

    #: Suffix appended to the base scenario's name (subclasses set it).
    tag = "combinator"

    @property
    def name(self) -> str:
        """Registry-style identifier: ``<base>+<tag>``."""
        return f"{self.base.name}+{self.tag}"

    @property
    def disjoint_eval(self) -> bool:
        """Propagated from the base: wrappers never touch eval labels."""
        return getattr(self.base, "disjoint_eval", False)

    def describe(self) -> str:
        """One-line summary: the base's, plus this combinator's effect."""
        return f"{self.base.describe()} [{self._effect()}]"

    def _effect(self) -> str:
        """Human-readable fragment describing the wrapper's effect."""
        raise NotImplementedError

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Lazily yield the base's steps, transformed (subclasses)."""
        raise NotImplementedError


@dataclass(frozen=True)
class _DriftSteps(_Combinator):
    """See :func:`with_drift`."""

    max_shift: int = 2
    dropout_p: float = 0.05
    blur: bool = True

    tag = "drift"

    def _effect(self) -> str:
        return (
            f"drift: jitter {self.max_shift}/step, "
            f"dropout {self.dropout_p:.0%}/step"
            + (", temporal blur" if self.blur else "")
        )

    def _severity(self, k: int, grid_steps: int) -> dict:
        """Severity schedule of step ``k`` (identical to the legacy
        ``domain-incremental`` built-in, part of its bitwise contract)."""
        return {
            "max_shift": (k + 1) * self.max_shift,
            "dropout_p": min((k + 1) * self.dropout_p, 0.45),
            "blur_steps": max(grid_steps // (k + 2), 8) if self.blur else None,
        }

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Yield the base's steps with drifted arriving data."""
        grid = generator.config.grid_steps
        for step in self.base.steps(generator, experiment):
            k = step.index
            severity = self._severity(k, grid)
            # One rng per step, consumed train-then-test in that order —
            # the exact stream the legacy built-in drew.
            rng = spawn(experiment.seed, f"scenario:domain:{k}")
            split = dataclasses.replace(
                step.split,
                new_train=drift_dataset(
                    step.split.new_train, rng, grid_steps=grid, **severity
                ),
                new_test=drift_dataset(
                    step.split.new_test, rng, grid_steps=grid, **severity
                ),
            )
            yield dataclasses.replace(
                step,
                split=split,
                name=f"step-{k}: domain drift severity {k + 1}",
                info={**step.info, "domain": k + 1, **severity},
            )


def with_drift(
    base: Scenario,
    *,
    max_shift: int = 2,
    dropout_p: float = 0.05,
    blur: bool = True,
) -> Scenario:
    """Drift each step's arriving data with step-increasing severity.

    Step k's ``new_train``/``new_test`` pass through
    :func:`~repro.data.transforms.drift_dataset` — onset jitter up to
    ``(k+1) * max_shift`` grid bins, channel dropout at
    ``(k+1) * dropout_p`` (capped at 0.45) and, with ``blur`` on,
    temporal blur through a ``grid_steps // (k+2)``-bin rebin cycle.
    Labels and the replay source (``pretrain_*``) are untouched, so
    "old accuracy" reads as retention of the clean domain and "new
    accuracy" as adaptation to the drifted one.  Over the ``stationary``
    base this reproduces the ``domain-incremental`` built-in bitwise.
    """
    if max_shift < 0:
        raise ConfigError(f"max_shift must be >= 0, got {max_shift}")
    if not 0.0 <= dropout_p < 1.0:
        raise ConfigError(f"dropout_p must lie in [0, 1), got {dropout_p}")
    return _DriftSteps(base, max_shift=max_shift, dropout_p=dropout_p, blur=blur)


@dataclass(frozen=True)
class _BlurSteps(_Combinator):
    """See :func:`with_blur`."""

    blur_fraction: float = 0.25

    tag = "blur"

    def _effect(self) -> str:
        return f"{self.blur_fraction:.0%} seen-class blend in each stream"

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Yield the base's steps with seen-class minority blends."""
        for step in self.base.steps(generator, experiment):
            k = step.index
            rng = spawn(experiment.seed, f"scenario:blurry:{k}")
            minority = step.split.pretrain_train.sample_fraction(
                self.blur_fraction, rng
            )
            split = dataclasses.replace(
                step.split, new_train=step.split.new_train.concat(minority)
            )
            yield dataclasses.replace(
                step,
                split=split,
                name=f"{step.name} (+{len(minority)} seen-class samples)",
                info={
                    **step.info,
                    "minority_samples": len(minority),
                    "blur_fraction": self.blur_fraction,
                },
            )


def with_blur(base: Scenario, *, blur_fraction: float = 0.25) -> Scenario:
    """Blend already-seen samples into each step's training stream.

    A class-stratified ``blur_fraction`` of every step's seen-class pool
    (``pretrain_train``, labels kept) is concatenated onto its
    ``new_train`` — the *blurry* setting, where class boundaries
    overlap.  Evaluation sets are untouched, so a ``disjoint_eval``
    promise of the base survives.  Over the ``sequential`` base this
    reproduces the ``blurry`` built-in bitwise.
    """
    if not 0.0 < blur_fraction <= 1.0:
        raise ConfigError(
            f"blur_fraction must lie in (0, 1], got {blur_fraction}"
        )
    return _BlurSteps(base, blur_fraction=blur_fraction)


@dataclass(frozen=True)
class _TaskMaskSteps(_Combinator):
    """See :func:`with_task_masks`."""

    tag = "task-masks"

    def _effect(self) -> str:
        return "task id known at inference: per-task readout masks"

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Yield the base's steps decorated with task membership."""
        groups: list[tuple[int, ...]] = []
        for step in self.base.steps(generator, experiment):
            if not groups:
                groups.append(step.split.old_classes)
            groups.append(step.split.new_classes)
            yield dataclasses.replace(
                step,
                name=f"step-{step.index}: +task {list(step.split.new_classes)}",
                task_classes=tuple(groups),
            )


def with_task_masks(base: Scenario) -> Scenario:
    """Evaluate the base's class stream task-incrementally.

    Decorates every step with
    :attr:`~repro.scenario.base.ContinualStep.task_classes` — task 0 is
    the first step's base pool, task j > 0 the classes that arrived at
    step j-1 — which
    :func:`~repro.scenario.runner.run_scenario` uses to mask the
    readout to the evaluated task's classes.  Training is untouched
    (task ids are an evaluation device), so the underlying stream is
    bitwise-identical to the unwrapped base at the same seed.  Over the
    ``sequential`` base this reproduces the ``task-incremental``
    built-in bitwise.
    """
    return _TaskMaskSteps(base)


@dataclass(frozen=True)
class _ClassRepetitionSteps(_Combinator):
    """See :func:`with_class_repetition`."""

    period: int = 1

    tag = "class-repetition"

    def _effect(self) -> str:
        return f"classes re-presented {self.period} step(s) after arrival"

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Yield the base's steps with periodic class re-presentation."""
        introduced: list[tuple[int, ...]] = []
        for step in self.base.steps(generator, experiment):
            introduced.append(step.split.new_classes)
            lag = len(introduced) - 1 - self.period
            repeated = introduced[lag] if lag >= 0 else ()
            # Only classes the step's seen pool can actually serve: a
            # base whose pretrain pool does not cover a repeated class
            # simply skips it (nothing to re-present).
            repeated = tuple(
                c for c in repeated if c in set(step.split.old_classes)
            )
            if not repeated:
                yield dataclasses.replace(
                    step, info={**step.info, "repeated_classes": ()}
                )
                continue
            encore = step.split.pretrain_train.filter_classes(repeated)
            split = dataclasses.replace(
                step.split, new_train=step.split.new_train.concat(encore)
            )
            yield dataclasses.replace(
                step,
                split=split,
                name=f"{step.name} (repeat {list(repeated)})",
                info={**step.info, "repeated_classes": repeated},
            )


def with_class_repetition(base: Scenario, *, period: int = 1) -> Scenario:
    """Re-present classes introduced ``period`` steps earlier.

    Step k's training stream additionally carries the full seen-pool
    recordings of the classes that *arrived* at step ``k - period``
    (labels kept) — the class-repetition regime of blurry/online
    taxonomies, where old classes recur instead of vanishing forever.
    Deterministic with no extra randomness (the whole repeated-class
    pool is re-presented).  Evaluation sets are untouched.
    """
    if period <= 0:
        raise ConfigError(f"period must be positive, got {period}")
    return _ClassRepetitionSteps(base, period=period)


@dataclass(frozen=True)
class _LabelNoiseSteps(_Combinator):
    """See :func:`with_label_noise`."""

    noise_fraction: float = 0.1

    tag = "label-noise"

    def _effect(self) -> str:
        return f"{self.noise_fraction:.0%} of training labels flipped"

    def steps(
        self, generator: SyntheticSHD, experiment: ExperimentConfig
    ) -> Iterator[ContinualStep]:
        """Yield the base's steps with per-step training-label noise."""
        for step in self.base.steps(generator, experiment):
            k = step.index
            rng = spawn(experiment.seed, f"scenario:label-noise:{k}")
            train = step.split.new_train
            labels = train.labels.copy()
            pool = np.asarray(
                sorted(set(step.split.old_classes) | set(step.split.new_classes)),
                dtype=np.int64,
            )
            flips = 0
            if len(labels) and pool.size > 1:
                count = int(np.ceil(self.noise_fraction * len(labels)))
                chosen = np.sort(
                    rng.choice(len(labels), size=count, replace=False)
                )
                for i in chosen:
                    wrong = pool[pool != labels[i]]
                    labels[i] = wrong[rng.integers(wrong.size)]
                flips = int(count)
            noisy = SpikeDataset(
                streams=list(train.streams),
                labels=labels,
                num_classes=train.num_classes,
            )
            split = dataclasses.replace(step.split, new_train=noisy)
            yield dataclasses.replace(
                step,
                split=split,
                name=f"{step.name} ({flips} noisy labels)",
                info={
                    **step.info,
                    "noisy_labels": flips,
                    "noise_fraction": self.noise_fraction,
                },
            )


def with_label_noise(base: Scenario, *, noise_fraction: float = 0.1) -> Scenario:
    """Flip a fraction of each step's training labels to seen classes.

    ``ceil(noise_fraction * n)`` recordings of every step's
    ``new_train`` get a uniformly chosen *wrong* label from the step's
    seen label space (old + new classes) — noisy supervision, the
    robustness regime of online-CL benchmarks.  Evaluation labels are
    never touched, so metrics still read against ground truth and a
    ``disjoint_eval`` promise of the base survives.  Deterministic per
    step via the ``scenario:label-noise:<k>`` seed key.
    """
    if not 0.0 <= noise_fraction <= 1.0:
        raise ConfigError(
            f"noise_fraction must lie in [0, 1], got {noise_fraction}"
        )
    return _LabelNoiseSteps(base, noise_fraction=noise_fraction)
