"""Raster-level transforms: rebinning, augmentation, mixing.

``rebin_raster`` is the workhorse of the paper's timestep optimisation:
it converts a raster between temporal resolutions the same way
re-binning the underlying events would.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError

__all__ = [
    "rebin_raster",
    "time_jitter",
    "channel_dropout",
    "merge_rasters",
    "drift_dataset",
]


def rebin_raster(raster: np.ndarray, new_timesteps: int) -> np.ndarray:
    """Re-bin a ``[T, ...]`` binary raster to ``new_timesteps`` bins.

    Each old bin maps to ``floor(t / T * T_new)``; a new bin spikes if any
    of its constituent old bins spiked (event-preserving OR-reduction).
    Downsampling merges spikes — deliberately lossy, exactly like binning
    the original event stream at the coarser resolution.  Upsampling
    places each spike at the first new bin of its window (zero-stuffing),
    matching the Fig. 7 decompression convention.
    """
    raster = np.asarray(raster)
    if raster.ndim < 1:
        raise DataError("raster must have a leading time axis")
    timesteps = raster.shape[0]
    if new_timesteps <= 0:
        raise DataError(f"new_timesteps must be positive, got {new_timesteps}")
    if new_timesteps == timesteps:
        return raster.astype(np.float32, copy=True)

    out_shape = (new_timesteps,) + raster.shape[1:]
    out = np.zeros(out_shape, dtype=np.float32)
    if new_timesteps < timesteps:
        mapping = (np.arange(timesteps) * new_timesteps) // timesteps
        np.maximum.at(out, mapping, raster.astype(np.float32, copy=False))
    else:
        mapping = (np.arange(timesteps) * new_timesteps) // timesteps
        out[mapping] = raster
    return out


def time_jitter(
    raster: np.ndarray, max_shift: int, rng: np.random.Generator
) -> np.ndarray:
    """Shift the whole raster by a random number of bins (±max_shift)."""
    if max_shift < 0:
        raise DataError(f"max_shift must be >= 0, got {max_shift}")
    shift = int(rng.integers(-max_shift, max_shift + 1))
    out = np.zeros_like(raster)
    if shift == 0:
        return raster.copy()
    if shift > 0:
        out[shift:] = raster[:-shift]
    else:
        out[:shift] = raster[-shift:]
    return out


def channel_dropout(
    raster: np.ndarray, p: float, rng: np.random.Generator
) -> np.ndarray:
    """Silence each channel independently with probability ``p``."""
    if not 0.0 <= p < 1.0:
        raise DataError(f"p must lie in [0, 1), got {p}")
    keep = rng.random(raster.shape[-1]) >= p
    return raster * keep.astype(raster.dtype)


def drift_dataset(
    dataset,
    rng: np.random.Generator,
    *,
    grid_steps: int,
    max_shift: int = 0,
    dropout_p: float = 0.0,
    blur_steps: int | None = None,
):
    """Apply a domain shift to every recording of a dataset.

    Models a deployed sensor whose input statistics drift while the
    label space stays fixed — the domain-incremental setting.  Each
    recording is rasterised at ``grid_steps`` bins and pushed through
    the raster transforms, per sample:

    1. temporal blur (optional): :func:`rebin_raster` down to
       ``blur_steps`` bins and back — the sensor's effective temporal
       resolution degrades, merging nearby events;
    2. :func:`time_jitter` by up to ``max_shift`` grid bins — onset
       drift (clock skew, changing reaction latency);
    3. :func:`channel_dropout` with probability ``dropout_p`` — dying
       channels.

    The result is converted back to an :class:`~repro.data.events.EventStream`
    per recording, so the drifted dataset walks through the exact same
    downstream machinery (dense caching, replay generation) as a clean
    one.  Deterministic given ``rng``; labels are untouched.
    """
    from repro.data.datasets import SpikeDataset
    from repro.data.events import EventStream

    if grid_steps <= 0:
        raise DataError(f"grid_steps must be positive, got {grid_steps}")
    if blur_steps is not None and not 0 < blur_steps <= grid_steps:
        raise DataError(
            f"blur_steps must lie in (0, {grid_steps}], got {blur_steps}"
        )
    streams = []
    for stream in dataset.streams:
        raster = stream.to_dense(grid_steps)
        if blur_steps is not None and blur_steps != grid_steps:
            raster = rebin_raster(rebin_raster(raster, blur_steps), grid_steps)
        raster = time_jitter(raster, max_shift, rng)
        raster = channel_dropout(raster, dropout_p, rng)
        streams.append(EventStream.from_dense(raster, duration=stream.duration))
    return SpikeDataset(
        streams=streams,
        labels=dataset.labels.copy(),
        num_classes=dataset.num_classes,
    )


def merge_rasters(a: np.ndarray, b: np.ndarray, axis: int = 1) -> np.ndarray:
    """Concatenate two ``[T, N, C]`` raster batches along the sample axis.

    Used to form the NCL minibatch pool ``A_new ∪ A_LR`` (Alg. 1 line
    31).  Time and channel dims must agree.
    """
    a, b = np.asarray(a), np.asarray(b)
    if a.ndim != 3 or b.ndim != 3:
        raise DataError("merge_rasters expects [T, N, C] arrays")
    if a.shape[0] != b.shape[0] or a.shape[2] != b.shape[2]:
        raise DataError(
            f"incompatible raster shapes {a.shape} and {b.shape}: time and "
            "channel dims must match"
        )
    return np.concatenate([a, b], axis=axis)
