"""Dataset serialization: save/load :class:`SpikeDataset` as ``.npz``.

Synthetic datasets are cheap to regenerate, but a stable on-disk format
matters for (a) caching large paper-scale datasets across runs and (b)
adapting real recordings (converted SHD files, sensor dumps) into the
library without going through the generator.

Format (single compressed ``.npz``): flat event arrays for all
recordings plus per-recording offsets, labels, and scalar metadata.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.datasets import SpikeDataset
from repro.data.events import EventStream
from repro.errors import DataError
from repro.ioutil import atomic_open

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def save_dataset(dataset: SpikeDataset, path: str | Path) -> Path:
    """Write ``dataset`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    if not dataset.streams:
        raise DataError("refusing to save an empty dataset")

    lengths = [s.num_events for s in dataset.streams]
    offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    times = np.concatenate([s.times for s in dataset.streams]) if sum(lengths) else np.empty(0)
    channels = (
        np.concatenate([s.channels for s in dataset.streams])
        if sum(lengths)
        else np.empty(0, dtype=np.int64)
    )
    durations = np.asarray([s.duration for s in dataset.streams])
    channel_counts = np.asarray([s.num_channels for s in dataset.streams])
    if len(set(channel_counts.tolist())) != 1:
        raise DataError("all recordings must share one channel count")

    with atomic_open(path, "wb") as handle:
        np.savez_compressed(
            handle,
            format_version=np.asarray(_FORMAT_VERSION),
            times=times,
            channels=channels,
            offsets=offsets,
            durations=durations,
            labels=dataset.labels,
            num_channels=np.asarray(channel_counts[0]),
            num_classes=np.asarray(dataset.num_classes),
        )
    return path


def load_dataset(path: str | Path) -> SpikeDataset:
    """Inverse of :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"dataset file not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        required = {"format_version", "times", "channels", "offsets",
                    "durations", "labels", "num_channels", "num_classes"}
        missing = required - set(archive.files)
        if missing:
            raise DataError(f"{path} is not a repro dataset (missing {sorted(missing)})")
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise DataError(
                f"unsupported dataset format version {version} "
                f"(this build reads {_FORMAT_VERSION})"
            )
        offsets = archive["offsets"]
        num_channels = int(archive["num_channels"])
        streams = []
        for i in range(len(offsets) - 1):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            streams.append(
                EventStream(
                    times=archive["times"][lo:hi],
                    channels=archive["channels"][lo:hi],
                    num_channels=num_channels,
                    duration=float(archive["durations"][i]),
                )
            )
        return SpikeDataset(
            streams=streams,
            labels=archive["labels"],
            num_classes=int(archive["num_classes"]),
        )
