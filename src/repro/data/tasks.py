"""Class-incremental task machinery (paper §IV).

The paper's scenario: pre-train the SNN on 19 SHD classes (the *old
tasks*), then continually learn the 20th class (the *new task*) while
replaying latent activations of the old ones.  :func:`make_class_incremental`
builds the four datasets every experiment needs:

- ``pretrain_train`` / ``pretrain_test`` — the 19 old classes,
- ``new_train`` / ``new_test`` — the held-out new class,

plus the combined ``test_all`` used for overall Top-1 accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.datasets import SpikeDataset
from repro.data.synthetic_shd import SyntheticSHD
from repro.errors import DataError

__all__ = ["ClassIncrementalSplit", "make_class_incremental"]


@dataclass(frozen=True)
class ClassIncrementalSplit:
    """All datasets of one class-incremental scenario."""

    pretrain_train: SpikeDataset
    pretrain_test: SpikeDataset
    new_train: SpikeDataset
    new_test: SpikeDataset
    old_classes: tuple[int, ...]
    new_classes: tuple[int, ...]

    @property
    def test_all(self) -> SpikeDataset:
        """Old + new test sets combined."""
        return self.pretrain_test.concat(self.new_test)

    def describe(self) -> str:
        """One-line human summary of the old/new class split."""
        return (
            f"class-incremental split: {len(self.old_classes)} old classes "
            f"({len(self.pretrain_train)} train / {len(self.pretrain_test)} test), "
            f"{len(self.new_classes)} new ({len(self.new_train)} train / "
            f"{len(self.new_test)} test)"
        )


def make_class_incremental(
    generator: SyntheticSHD,
    samples_per_class: int,
    test_samples_per_class: int,
    num_pretrain_classes: int | None = None,
) -> ClassIncrementalSplit:
    """Build the paper's 19+1 scenario from a dataset generator.

    ``num_pretrain_classes`` defaults to ``num_classes - 1`` — the paper's
    configuration where exactly one class arrives during the CL phase.
    """
    num_classes = generator.config.num_classes
    if num_pretrain_classes is None:
        num_pretrain_classes = num_classes - 1
    if not 0 < num_pretrain_classes < num_classes:
        raise DataError(
            f"num_pretrain_classes must lie in (0, {num_classes}), "
            f"got {num_pretrain_classes}"
        )
    old = list(range(num_pretrain_classes))
    new = list(range(num_pretrain_classes, num_classes))

    return ClassIncrementalSplit(
        pretrain_train=generator.generate_dataset(
            samples_per_class, split="train", classes=old
        ),
        pretrain_test=generator.generate_dataset(
            test_samples_per_class, split="test", classes=old
        ),
        new_train=generator.generate_dataset(
            samples_per_class, split="train", classes=new
        ),
        new_test=generator.generate_dataset(
            test_samples_per_class, split="test", classes=new
        ),
        old_classes=tuple(old),
        new_classes=tuple(new),
    )
