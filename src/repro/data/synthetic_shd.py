"""A generative stand-in for the Spiking Heidelberg Digits dataset.

Why this exists
---------------
The paper's workload is SHD [Cramer et al., 2020]: spoken digits (0-9 in
English and German, 20 classes) converted to spike trains over 700
cochlear-model channels.  The real files are a network download, which
this environment does not allow, so we synthesize recordings with the
same interface and the same *method-relevant* structure:

- **Channelized spectro-temporal trajectories.**  A spoken digit excites
  a handful of formant-like ridges that sweep across neighbouring
  cochlear channels over time.  Each synthetic class is defined by a set
  of such trajectories (start/end channel, curvature, intensity
  envelope); samples jitter the trajectory parameters (speaker
  variability), warp time (speaking rate), and draw actual spikes from an
  inhomogeneous Poisson process on the resulting intensity field.
- **Temporal information.**  Classes share channel *occupancy* but differ
  in trajectory *timing and direction*, so coarser time binning (fewer
  timesteps) genuinely destroys class information — the accuracy-vs-
  timestep tension at the core of the paper (Fig. 2b, Fig. 8).
- **Sparsity.**  Event counts per recording are calibrated to a few
  spikes per channel on average, like SHD.

The generator is fully deterministic given ``(config, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import SpikeDataset
from repro.data.events import EventStream
from repro.errors import ConfigError, DataError
from repro.seeding import spawn

__all__ = ["SyntheticSHDConfig", "SyntheticSHD"]


@dataclass(frozen=True)
class SyntheticSHDConfig:
    """Shape and statistics of the synthetic dataset.

    Attributes
    ----------
    num_channels:
        Cochlear channel count (SHD: 700).
    num_classes:
        Digit classes (SHD: 20).
    trajectories_per_class:
        Formant-like ridges per class prototype.
    num_anchors:
        Size of the *shared* pool of channel positions that trajectory
        endpoints are drawn from.  Because all classes sweep between the
        same anchors, channel occupancy alone barely separates classes —
        the discriminative information is *when* and *in which direction*
        the sweeps happen, which is what coarser time binning destroys
        (the accuracy-vs-timestep tension of paper Fig. 2b / Fig. 8).
    peak_rate:
        Peak event rate of a trajectory, events per channel per second.
    background_rate:
        Uniform noise event rate (sensor noise).
    duration:
        Nominal recording length in seconds (SHD recordings are ~1 s).
    channel_bandwidth:
        Gaussian width of a trajectory across channels, as a fraction of
        the channel array.
    time_warp_std:
        Std-dev of the per-sample speaking-rate warp (0.1 -> ±10%).
    channel_jitter_std:
        Std-dev of per-sample trajectory displacement, as a fraction of
        the channel array.
    grid_steps:
        Resolution of the intensity grid events are drawn on.  Event
        times get uniform jitter inside a grid cell, so any dense binning
        at ``timesteps <= grid_steps`` is meaningful.
    """

    num_channels: int = 700
    num_classes: int = 20
    trajectories_per_class: int = 3
    num_anchors: int = 8
    peak_rate: float = 60.0
    background_rate: float = 0.4
    duration: float = 1.0
    channel_bandwidth: float = 0.03
    time_warp_std: float = 0.08
    channel_jitter_std: float = 0.02
    grid_steps: int = 200

    def __post_init__(self):
        if self.num_channels <= 0:
            raise ConfigError(f"num_channels must be positive, got {self.num_channels}")
        if self.num_classes <= 1:
            raise ConfigError(f"num_classes must be > 1, got {self.num_classes}")
        if self.trajectories_per_class <= 0:
            raise ConfigError(
                f"trajectories_per_class must be positive, got {self.trajectories_per_class}"
            )
        if self.peak_rate <= 0 or self.background_rate < 0:
            raise ConfigError("rates must be positive (background may be 0)")
        if self.duration <= 0:
            raise ConfigError(f"duration must be positive, got {self.duration}")
        if not 0 < self.channel_bandwidth < 0.5:
            raise ConfigError(
                f"channel_bandwidth must lie in (0, 0.5), got {self.channel_bandwidth}"
            )
        if self.num_anchors < 2:
            raise ConfigError(f"num_anchors must be >= 2, got {self.num_anchors}")
        if self.grid_steps < 10:
            raise ConfigError(f"grid_steps must be >= 10, got {self.grid_steps}")


@dataclass(frozen=True)
class _Trajectory:
    """One formant ridge of a class prototype (internal)."""

    start_channel: float  # fraction of the channel array
    end_channel: float
    curvature: float  # quadratic bend of the sweep
    onset: float  # fraction of duration
    offset: float
    intensity: float  # multiplier on peak_rate


class SyntheticSHD:
    """Deterministic generator of SHD-like spike recordings.

    >>> gen = SyntheticSHD(SyntheticSHDConfig(num_channels=64, num_classes=4), seed=0)
    >>> stream = gen.generate(class_id=1, sample_id=0)
    >>> stream.num_channels
    64
    """

    def __init__(self, config: SyntheticSHDConfig, seed: int = 0):
        self.config = config
        self.seed = int(seed)
        # Shared anchor pool: evenly spread channel positions with a
        # seeded perturbation.  All class prototypes draw endpoints from
        # this pool, which overlaps their channel occupancy (see
        # SyntheticSHDConfig.num_anchors).
        anchor_rng = spawn(seed, "anchors")
        base = np.linspace(0.15, 0.85, config.num_anchors)
        perturb = anchor_rng.uniform(-0.03, 0.03, size=config.num_anchors)
        self._anchors = np.clip(base + perturb, 0.05, 0.95)
        self._prototypes = [
            self._make_prototype(c) for c in range(config.num_classes)
        ]

    @property
    def anchors(self) -> np.ndarray:
        """The shared channel-anchor pool (fractions of the array)."""
        return self._anchors.copy()

    # ------------------------------------------------------------------
    # Prototypes
    # ------------------------------------------------------------------
    def _make_prototype(self, class_id: int) -> list[_Trajectory]:
        """Draw the class-defining trajectory set from the class RNG.

        Each trajectory sweeps between two distinct shared anchors inside
        a class-specific time window.  Classes therefore differ mainly in
        *which anchor pairs connect, when, and in which direction* —
        temporal structure — rather than in raw channel occupancy.
        """
        rng = spawn(self.seed, f"class{class_id}")
        cfg = self.config
        trajectories = []
        # Stagger onset windows across the duration so trajectory order
        # is part of the class identity.
        slots = np.linspace(0.0, 0.5, cfg.trajectories_per_class)
        for k in range(cfg.trajectories_per_class):
            start_idx, end_idx = rng.choice(cfg.num_anchors, size=2, replace=False)
            onset = float(slots[k] + rng.uniform(0.0, 0.15))
            offset = float(min(onset + rng.uniform(0.3, 0.5), 1.0))
            trajectories.append(
                _Trajectory(
                    start_channel=float(self._anchors[start_idx]),
                    end_channel=float(self._anchors[end_idx]),
                    curvature=rng.uniform(-0.25, 0.25),
                    onset=onset,
                    offset=offset,
                    intensity=rng.uniform(0.7, 1.0),
                )
            )
        return trajectories

    def class_prototype(self, class_id: int) -> list[_Trajectory]:
        """Expose the prototype (tests verify determinism/separation)."""
        self._check_class(class_id)
        return self._prototypes[class_id]

    def _check_class(self, class_id: int) -> None:
        if not 0 <= class_id < self.config.num_classes:
            raise DataError(
                f"class_id {class_id} out of range 0..{self.config.num_classes - 1}"
            )

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def intensity_field(
        self, class_id: int, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Rate field ``[grid_steps, num_channels]`` in events/channel/s.

        With ``rng`` given, per-sample speaker variability (time warp and
        channel jitter) is applied; without it, the clean class field is
        returned.
        """
        self._check_class(class_id)
        cfg = self.config
        grid_t = np.linspace(0.0, 1.0, cfg.grid_steps, endpoint=False) + 0.5 / cfg.grid_steps
        channels = np.arange(cfg.num_channels) / cfg.num_channels
        field = np.full(
            (cfg.grid_steps, cfg.num_channels), cfg.background_rate, dtype=np.float64
        )
        for traj in self._prototypes[class_id]:
            start, end, curve = traj.start_channel, traj.end_channel, traj.curvature
            onset, offset = traj.onset, traj.offset
            if rng is not None:
                shift = rng.normal(0.0, cfg.channel_jitter_std)
                start = float(np.clip(start + shift, 0.02, 0.98))
                end = float(np.clip(end + shift, 0.02, 0.98))
                warp = float(np.clip(rng.normal(1.0, cfg.time_warp_std), 0.7, 1.3))
                onset = onset * warp
                offset = min(offset * warp, 1.0)
            # Active window envelope (smooth rise/fall).
            span = max(offset - onset, 1e-3)
            phase = (grid_t - onset) / span
            envelope = np.where(
                (phase >= 0) & (phase <= 1), np.sin(np.pi * np.clip(phase, 0, 1)), 0.0
            )
            # Channel centre sweeps from start to end with quadratic bend.
            centre = start + (end - start) * phase + curve * phase * (1 - phase)
            gauss = np.exp(
                -0.5
                * ((channels[None, :] - centre[:, None]) / cfg.channel_bandwidth) ** 2
            )
            field += cfg.peak_rate * traj.intensity * envelope[:, None] * gauss
        return field

    def generate(self, class_id: int, sample_id: int) -> EventStream:
        """Draw one recording of ``class_id`` (deterministic per sample_id)."""
        self._check_class(class_id)
        cfg = self.config
        rng = spawn(self.seed, f"sample:{class_id}:{sample_id}")
        field = self.intensity_field(class_id, rng)
        # Inhomogeneous Poisson: counts per grid cell, then jitter event
        # times uniformly inside the cell to obtain continuous times.
        dt = cfg.duration / cfg.grid_steps
        counts = rng.poisson(field * dt)
        # Binarize per cell: SHD-style binary rasters at grid resolution.
        t_idx, c_idx = np.nonzero(counts)
        jitter = rng.random(t_idx.size)
        times = (t_idx + jitter) * dt
        return EventStream(
            times=times,
            channels=c_idx,
            num_channels=cfg.num_channels,
            duration=cfg.duration,
        )

    def generate_dataset(
        self,
        samples_per_class: int,
        split: str = "train",
        classes: list[int] | None = None,
    ) -> SpikeDataset:
        """Generate a labelled dataset.

        ``split`` offsets the sample ids so train/test never share draws:
        train uses ids ``0..n-1``, test uses ``10_000 + 0..n-1``.
        """
        if samples_per_class <= 0:
            raise DataError(f"samples_per_class must be positive, got {samples_per_class}")
        if split not in ("train", "test"):
            raise DataError(f"split must be 'train' or 'test', got {split!r}")
        offset = 0 if split == "train" else 10_000
        classes = list(range(self.config.num_classes)) if classes is None else classes
        for c in classes:
            self._check_class(c)
        streams: list[EventStream] = []
        labels: list[int] = []
        for class_id in classes:
            for sample_id in range(samples_per_class):
                streams.append(self.generate(class_id, offset + sample_id))
                labels.append(class_id)
        return SpikeDataset(
            streams=streams,
            labels=np.asarray(labels, dtype=np.int64),
            num_classes=self.config.num_classes,
        )
