"""Spike-train statistics: dataset- and activation-level summaries.

Used by the analysis example and by tests to characterise workloads the
way the SHD paper does (rates, occupancy, temporal structure), and to
verify that synthetic data stays in the sparse regime the energy model
assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import SpikeDataset
from repro.errors import DataError

__all__ = ["RasterStats", "raster_stats", "dataset_stats", "class_confusability"]


@dataclass(frozen=True)
class RasterStats:
    """Summary statistics of one binary raster ``[T, C]`` (or a batch).

    Attributes
    ----------
    density:
        Fraction of active cells (spikes per timestep per channel).
    spikes_per_sample:
        Mean total spike count per sample.
    active_channel_fraction:
        Fraction of channels with at least one spike.
    temporal_centroid:
        Mean spike time as a fraction of the duration (0.5 = centred).
    burstiness:
        Coefficient of variation of per-timestep spike counts; 0 for a
        perfectly uniform train, higher for clustered activity.
    """

    density: float
    spikes_per_sample: float
    active_channel_fraction: float
    temporal_centroid: float
    burstiness: float


def raster_stats(raster: np.ndarray) -> RasterStats:
    """Compute :class:`RasterStats` for ``[T, C]`` or ``[T, N, C]`` rasters."""
    raster = np.asarray(raster)
    if raster.ndim == 2:
        raster = raster[:, None, :]
    if raster.ndim != 3:
        raise DataError(f"expected [T, C] or [T, N, C], got shape {raster.shape}")
    timesteps, batch, channels = raster.shape
    total = float(raster.sum())
    if total == 0:
        return RasterStats(0.0, 0.0, 0.0, 0.5, 0.0)

    per_step = raster.sum(axis=(1, 2))
    times = np.arange(timesteps)
    centroid = float((per_step * times).sum() / total / max(timesteps - 1, 1))
    mean_rate = per_step.mean()
    burstiness = float(per_step.std() / mean_rate) if mean_rate > 0 else 0.0
    active = float((raster.sum(axis=0) > 0).mean())
    return RasterStats(
        density=total / raster.size,
        spikes_per_sample=total / batch,
        active_channel_fraction=active,
        temporal_centroid=centroid,
        burstiness=burstiness,
    )


def dataset_stats(dataset: SpikeDataset, timesteps: int) -> dict[int, RasterStats]:
    """Per-class :class:`RasterStats` of a dataset at a binning."""
    dense = dataset.to_dense(timesteps)
    result: dict[int, RasterStats] = {}
    for class_id in dataset.present_classes:
        mask = dataset.labels == class_id
        result[class_id] = raster_stats(dense[:, mask, :])
    return result


def class_confusability(dataset: SpikeDataset, timesteps: int) -> np.ndarray:
    """Pairwise class-mean raster distances, normalized to [0, 1].

    Entry ``[i, j]`` is 1 minus the normalized L1 distance between the
    mean rasters of classes i and j — 1.0 on the diagonal, higher
    off-diagonal values mean classes look more alike at this binning.
    Coarser binnings should (weakly) increase confusability, which is
    the information-theoretic face of the paper's timestep trade-off.
    """
    dense = dataset.to_dense(timesteps)
    classes = dataset.present_classes
    if not classes:
        raise DataError("dataset has no samples")
    means = np.stack(
        [dense[:, dataset.labels == c, :].mean(axis=1) for c in classes]
    )  # [K, T, C]
    n = len(classes)
    out = np.zeros((n, n))
    scale = means.mean() * 2.0 * means[0].size or 1.0
    for i in range(n):
        for j in range(n):
            distance = np.abs(means[i] - means[j]).sum()
            out[i, j] = 1.0 - min(distance / scale, 1.0)
    return out
