"""Data substrate: event streams, the synthetic SHD workload, tasks, loaders.

The paper evaluates on the Spiking Heidelberg Digits (SHD) dataset —
audio-derived spike trains over 700 cochlear channels, 20 classes.  The
real files cannot be downloaded in this offline environment, so
:mod:`repro.data.synthetic_shd` provides a generative stand-in that
preserves the properties the method exercises (see DESIGN.md §2):
temporally-structured sparse events whose class information degrades as
timesteps are reduced.

The class-incremental protocol of the paper (pre-train on 19 classes,
continually learn the 20th) lives in :mod:`repro.data.tasks`.
"""

from repro.data.datasets import SpikeDataset
from repro.data.events import EventStream
from repro.data.io import load_dataset, save_dataset
from repro.data.loaders import DataLoader
from repro.data.stats import RasterStats, class_confusability, dataset_stats, raster_stats
from repro.data.synthetic_shd import SyntheticSHD, SyntheticSHDConfig
from repro.data.tasks import ClassIncrementalSplit, make_class_incremental
from repro.data.transforms import (
    channel_dropout,
    drift_dataset,
    merge_rasters,
    rebin_raster,
    time_jitter,
)

__all__ = [
    "EventStream",
    "SpikeDataset",
    "SyntheticSHD",
    "SyntheticSHDConfig",
    "ClassIncrementalSplit",
    "make_class_incremental",
    "DataLoader",
    "rebin_raster",
    "time_jitter",
    "channel_dropout",
    "drift_dataset",
    "merge_rasters",
    "RasterStats",
    "raster_stats",
    "dataset_stats",
    "class_confusability",
    "save_dataset",
    "load_dataset",
]
