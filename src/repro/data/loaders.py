"""Minibatch iteration over dense spike rasters and lazy batch sources."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import DataError

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate ``(inputs, labels)`` minibatches over time-major rasters.

    Parameters
    ----------
    inputs:
        ``[T, N, C]`` dense rasters (or ``[T, N, C_latent]`` latent
        activations — the loader is agnostic), **or** a lazy batch
        source: any object with a 3-tuple ``.shape`` and a
        ``.gather(indices) -> [T, k, C]`` method (e.g.
        :class:`~repro.replaystore.stream.ConcatReplaySource`).  Lazy
        sources let replay data stay on disk; the loader materialises
        only one minibatch at a time.
    labels:
        ``[N]`` integer labels.
    batch_size:
        Samples per minibatch; the final batch may be smaller.
    shuffle:
        Re-draw the sample order each epoch from ``rng``.
    """

    def __init__(
        self,
        inputs,
        labels: np.ndarray,
        batch_size: int,
        shuffle: bool = True,
        rng: np.random.Generator | None = None,
    ):
        self._lazy = not isinstance(inputs, np.ndarray) and hasattr(inputs, "gather")
        if not self._lazy:
            inputs = np.asarray(inputs)
        shape = tuple(inputs.shape)
        labels = np.asarray(labels)
        if len(shape) != 3:
            raise DataError(f"inputs must be [T, N, C], got shape {shape}")
        if labels.ndim != 1 or labels.shape[0] != shape[1]:
            raise DataError(
                f"labels shape {labels.shape} incompatible with inputs {shape}"
            )
        if batch_size <= 0:
            raise DataError(f"batch_size must be positive, got {batch_size}")
        self.inputs = inputs
        self.labels = labels
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.rng = rng or np.random.default_rng()
        self._num_samples = int(shape[1])

    @property
    def num_samples(self) -> int:
        """Total samples the loader iterates per epoch."""
        return self._num_samples

    def __len__(self) -> int:
        """Number of minibatches per epoch."""
        return (self.num_samples + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = np.arange(self.num_samples)
        if self.shuffle:
            self.rng.shuffle(order)
        starts = range(0, self.num_samples, self.batch_size)
        batches = [order[start : start + self.batch_size] for start in starts]
        # Lazy sources that can warm themselves (PrefetchingStream via
        # ConcatReplaySource) are told the *next* batch's indices after
        # the current batch is materialised but before it is served: its
        # shards then decode on the background thread while the consumer
        # trains on this batch.  Advising after the gather matters — the
        # other order would have the warm-up evict shards the current
        # gather is about to touch.  Purely advisory: batch content and
        # order are unaffected.
        advise = getattr(self.inputs, "prefetch", None) if self._lazy else None
        for i, batch in enumerate(batches):
            if self._lazy:
                data = self.inputs.gather(batch)
            else:
                data = self.inputs[:, batch, :]
            if advise is not None and i + 1 < len(batches):
                advise(batches[i + 1])
            yield data, self.labels[batch]
