"""Sparse address-event representation of spike recordings.

An :class:`EventStream` mirrors how neuromorphic datasets (SHD, DVS
recordings) ship: a list of ``(time, channel)`` events over a fixed
duration.  Dense binary rasters at any timestep resolution are produced
by :meth:`EventStream.to_dense` — this is exactly the "timestep
reduction" knob of the paper: fewer bins merge events and lose temporal
detail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError

__all__ = ["EventStream"]


@dataclass(frozen=True)
class EventStream:
    """An immutable set of spike events on a channel array.

    Attributes
    ----------
    times:
        Event times in ``[0, duration)`` (float seconds), any order.
    channels:
        Event channel indices in ``[0, num_channels)``.
    num_channels:
        Size of the channel array (700 for SHD).
    duration:
        Recording length in seconds.
    """

    times: np.ndarray
    channels: np.ndarray
    num_channels: int
    duration: float

    def __post_init__(self):
        times = np.asarray(self.times, dtype=np.float64)
        channels = np.asarray(self.channels, dtype=np.int64)
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "channels", channels)
        if times.ndim != 1 or channels.ndim != 1:
            raise DataError("times and channels must be 1-D arrays")
        if times.shape != channels.shape:
            raise DataError(
                f"times ({times.shape}) and channels ({channels.shape}) must align"
            )
        if self.num_channels <= 0:
            raise DataError(f"num_channels must be positive, got {self.num_channels}")
        if self.duration <= 0:
            raise DataError(f"duration must be positive, got {self.duration}")
        if times.size:
            if times.min() < 0 or times.max() >= self.duration:
                raise DataError("event times must lie in [0, duration)")
            if channels.min() < 0 or channels.max() >= self.num_channels:
                raise DataError("event channels out of range")

    @property
    def num_events(self) -> int:
        """Number of address events in the stream."""
        return int(self.times.size)

    def to_dense(self, timesteps: int) -> np.ndarray:
        """Bin events into a dense binary raster ``[timesteps, num_channels]``.

        Multiple events falling into one (bin, channel) cell clip to a
        single spike — binary rasters are what the SNN consumes and what
        the latent-replay codecs store.
        """
        if timesteps <= 0:
            raise DataError(f"timesteps must be positive, got {timesteps}")
        raster = np.zeros((timesteps, self.num_channels), dtype=np.float32)
        if self.times.size:
            bins = np.floor(self.times / self.duration * timesteps).astype(np.int64)
            bins = np.clip(bins, 0, timesteps - 1)
            raster[bins, self.channels] = 1.0
        return raster

    def mean_rate(self) -> float:
        """Average events per channel per second."""
        return self.num_events / (self.num_channels * self.duration)

    def time_scaled(self, factor: float) -> "EventStream":
        """Return a copy with time stretched by ``factor`` (speaker speed)."""
        if factor <= 0:
            raise DataError(f"scale factor must be positive, got {factor}")
        return EventStream(
            times=self.times * factor,
            channels=self.channels.copy(),
            num_channels=self.num_channels,
            duration=self.duration * factor,
        )

    @staticmethod
    def from_dense(raster: np.ndarray, duration: float = 1.0) -> "EventStream":
        """Inverse of :meth:`to_dense`: bin centres become event times."""
        raster = np.asarray(raster)
        if raster.ndim != 2:
            raise DataError(f"raster must be [T, C], got shape {raster.shape}")
        timesteps, num_channels = raster.shape
        t_idx, c_idx = np.nonzero(raster)
        times = (t_idx + 0.5) / timesteps * duration
        return EventStream(
            times=times,
            channels=c_idx,
            num_channels=num_channels,
            duration=duration,
        )
