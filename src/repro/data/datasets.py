"""Labelled spike datasets with dense-raster materialisation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.events import EventStream
from repro.errors import DataError

__all__ = ["SpikeDataset"]


@dataclass
class SpikeDataset:
    """A list of :class:`EventStream` recordings with integer labels.

    ``num_classes`` is the label-space size of the *full* problem (20 for
    SHD), independent of which classes are present — class-incremental
    subsets keep global label ids so the readout layer never needs
    remapping.
    """

    streams: list[EventStream]
    labels: np.ndarray
    num_classes: int
    _dense_cache: dict[int, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self):
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if len(self.streams) != self.labels.shape[0]:
            raise DataError(
                f"{len(self.streams)} streams but {self.labels.shape[0]} labels"
            )
        if self.labels.size and (
            self.labels.min() < 0 or self.labels.max() >= self.num_classes
        ):
            raise DataError(
                f"labels must lie in [0, {self.num_classes}), got range "
                f"[{self.labels.min()}, {self.labels.max()}]"
            )

    def __len__(self) -> int:
        return len(self.streams)

    @property
    def present_classes(self) -> list[int]:
        """Sorted class labels that actually occur in this dataset."""
        return sorted(set(int(label) for label in self.labels))

    def class_counts(self) -> dict[int, int]:
        """Mapping of class label to its number of samples."""
        values, counts = np.unique(self.labels, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def to_dense(self, timesteps: int) -> np.ndarray:
        """Materialise all recordings as ``[T, N, C]`` time-major rasters.

        Cached per timestep count — experiments rebin the same dataset at
        several resolutions (100/60/40/20) and binning dominates setup
        cost otherwise.
        """
        if timesteps not in self._dense_cache:
            if not self.streams:
                num_channels = 0
            else:
                num_channels = self.streams[0].num_channels
            rasters = np.zeros(
                (timesteps, len(self.streams), num_channels), dtype=np.float32
            )
            for i, stream in enumerate(self.streams):
                rasters[:, i, :] = stream.to_dense(timesteps)
            self._dense_cache[timesteps] = rasters
        return self._dense_cache[timesteps]

    def subset(self, indices) -> "SpikeDataset":
        """New dataset holding only the samples at ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        return SpikeDataset(
            streams=[self.streams[i] for i in indices],
            labels=self.labels[indices],
            num_classes=self.num_classes,
        )

    def filter_classes(self, classes) -> "SpikeDataset":
        """Keep only recordings whose label is in ``classes``."""
        keep = set(int(c) for c in classes)
        indices = [i for i, label in enumerate(self.labels) if int(label) in keep]
        return self.subset(indices)

    def sample_fraction(
        self, fraction: float, rng: np.random.Generator
    ) -> "SpikeDataset":
        """Class-stratified random subset (the replay subset TS_replay).

        Keeps ``ceil(fraction * n_c)`` recordings of every class ``c`` so
        no old class is dropped from the replay buffer.
        """
        if not 0.0 < fraction <= 1.0:
            raise DataError(f"fraction must lie in (0, 1], got {fraction}")
        chosen: list[int] = []
        for class_id in self.present_classes:
            class_indices = np.flatnonzero(self.labels == class_id)
            keep = max(1, int(np.ceil(fraction * class_indices.size)))
            chosen.extend(rng.choice(class_indices, size=keep, replace=False).tolist())
        return self.subset(sorted(chosen))

    def concat(self, other: "SpikeDataset") -> "SpikeDataset":
        """Concatenate two compatible datasets along the sample axis."""
        if self.num_classes != other.num_classes:
            raise DataError(
                f"cannot concat datasets with {self.num_classes} vs "
                f"{other.num_classes} classes"
            )
        return SpikeDataset(
            streams=self.streams + other.streams,
            labels=np.concatenate([self.labels, other.labels]),
            num_classes=self.num_classes,
        )
