"""The built-in rule catalog (``RPL000``–``RPL009``).

Each rule encodes one invariant the reproduction's tests rely on but
could not previously enforce globally; ``docs/lint.md`` carries the
full rationale and the suppression policy.  Rules resolve dotted names
through the per-file import-alias map, so a local variable named
``random`` or ``time`` never false-positives.
"""

from __future__ import annotations

import ast

from repro.lint.framework import META_RULE_ID, LintContext, Rule, register

__all__ = [
    "SuppressionHygieneRule",
    "GlobalRngRule",
    "WallClockRule",
    "EnvAccessRule",
    "AtomicWriteRule",
    "ErrorTaxonomyRule",
    "LazyStepsRule",
    "FrozenSpecRule",
    "NoPrintRule",
    "NumpySaveRule",
]


@register
class SuppressionHygieneRule(Rule):
    """Meta rule: malformed suppressions and unparseable files.

    The framework itself emits these findings (missing reason, unknown
    rule id, syntax error); registering the id keeps it documented,
    listable, and impossible to reuse.
    """

    id = META_RULE_ID
    name = "suppression-hygiene"
    rationale = (
        "Inline suppressions are the audited escape hatch of every other "
        "rule; one without a reason (or naming an unknown rule) hides a "
        "contract violation without recording why, so the linter reports "
        "it and refuses to honour it.  RPL000 itself cannot be suppressed."
    )
    node_types = ()

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        """Never dispatched; the framework raises RPL000 directly."""


@register
class GlobalRngRule(Rule):
    """RPL001: no global-state RNG — thread a ``Generator``."""

    id = "RPL001"
    name = "no-global-rng"
    rationale = (
        "Bitwise-identical trajectories (the PR 1 contract every parity "
        "suite builds on) require all randomness to flow from the "
        "experiment seed through explicitly threaded numpy Generators.  "
        "Module-level RNG functions (random.*, np.random.*) draw from "
        "hidden global state, and an unseeded default_rng() seeds itself "
        "from the OS — either silently forks a run's trajectory.  "
        "repro.seeding owns generator construction; repro.data generators "
        "are exempt because dataset synthesis derives every draw from "
        "(seed, class, sample) via generators it is handed."
    )
    exclude = ("repro/seeding.py", "repro/data/*")
    node_types = (ast.Call,)

    #: Explicit-state constructors under ``numpy.random`` that are fine.
    _NUMPY_EXEMPT = frozenset(
        {
            "Generator",
            "BitGenerator",
            "SeedSequence",
            "PCG64",
            "PCG64DXSM",
            "MT19937",
            "Philox",
            "SFC64",
        }
    )
    #: Explicit-state constructors under stdlib ``random`` that are fine.
    _STDLIB_EXEMPT = frozenset({"Random", "SystemRandom"})

    def check(self, node: ast.Call, ctx: LintContext) -> None:
        """Flag ``random.*`` / ``numpy.random.*`` module-level calls."""
        full = ctx.resolve(node.func)
        if full is None:
            return
        if full.startswith("random."):
            leaf = full.split(".")[-1]
            if leaf in self._STDLIB_EXEMPT:
                return
            ctx.report(
                self,
                node,
                f"global-state RNG call {full}()",
                "thread an explicit np.random.Generator derived via "
                "repro.seeding.spawn(seed, key)",
            )
        elif full.startswith("numpy.random."):
            leaf = full.split(".")[-1]
            if leaf in self._NUMPY_EXEMPT:
                return
            ctx.report(
                self,
                node,
                f"module-level RNG call {full}()",
                "construct generators through repro.seeding "
                "(spawn/default_rng) and thread them explicitly",
            )


@register
class WallClockRule(Rule):
    """RPL002: no wall-clock reads — inject a ``Clock``."""

    id = "RPL002"
    name = "no-wallclock"
    rationale = (
        "Library code that reads the wall clock produces spans, metrics "
        "and records that differ run to run, which breaks deterministic "
        "trace tests and smuggles time-dependence into results.  Timing "
        "belongs to the injectable Clock protocol (repro.obs.clock — "
        "ManualClock makes tests deterministic) and to the one module "
        "whose whole point is wall time, repro.hw.wallclock."
    )
    exclude = ("repro/obs/clock.py", "repro/hw/wallclock.py")
    node_types = (ast.Call,)

    _BANNED = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "time.process_time_ns",
            "datetime.datetime.now",
            "datetime.datetime.today",
            "datetime.datetime.utcnow",
            "datetime.date.today",
        }
    )

    def check(self, node: ast.Call, ctx: LintContext) -> None:
        """Flag direct reads of process/wall clocks."""
        full = ctx.resolve(node.func)
        if full in self._BANNED:
            ctx.report(
                self,
                node,
                f"wall-clock read {full}()",
                "inject a repro.obs.clock.Clock (MonotonicClock in "
                "production, ManualClock in tests)",
            )


@register
class EnvAccessRule(Rule):
    """RPL003: no ``os.environ`` access outside ``repro.config``."""

    id = "RPL003"
    name = "no-env-access"
    rationale = (
        "Every REPRO_* flag is declared once in repro.config.ENV_FLAGS so "
        "the documented environment reference is provably complete "
        "(tests/docs verifies it field for field).  A direct os.environ "
        "read elsewhere creates an undocumented, unvalidated knob that "
        "the docs conformance tests cannot see."
    )
    exclude = ("repro/config.py",)
    node_types = (ast.Attribute, ast.Name, ast.Call)

    def check(self, node: ast.AST, ctx: LintContext) -> None:
        """Flag ``os.environ`` uses and ``os.getenv``/``putenv`` calls."""
        if isinstance(node, ast.Call):
            full = ctx.resolve(node.func)
            if full in ("os.getenv", "os.putenv", "os.unsetenv"):
                ctx.report(
                    self,
                    node,
                    f"direct environment access {full}()",
                    "declare the flag in repro.config.ENV_FLAGS and read "
                    "it via env_value()/env_switch()",
                )
            return
        # Name covers `from os import environ`; Attribute covers
        # `os.environ`.  Resolution returns exactly "os.environ" only at
        # the chain root, so `os.environ.get(...)` reports once.
        if ctx.resolve(node) == "os.environ":
            ctx.report(
                self,
                node,
                "direct os.environ access",
                "declare the flag in repro.config.ENV_FLAGS and read it "
                "via env_value()/env_switch()",
            )


@register
class AtomicWriteRule(Rule):
    """RPL004: persistence modules must use the atomic write helpers."""

    id = "RPL004"
    name = "atomic-writes"
    rationale = (
        "Checkpoint manifests and store/federation indexes promise that "
        "a crash at any instant leaves the previous complete file intact "
        "(resume tests kill real subprocesses at every step boundary to "
        "prove it).  A bare open(path, 'w'), json.dump, or "
        "Path.write_text onto a final path truncates before it writes — "
        "one mistimed crash corrupts the commit point.  All such writes "
        "route through repro.ioutil's write-then-atomic-rename helpers.  "
        "Immutable shard payloads (fresh filenames committed by a later "
        "index rename) may still use write_bytes: the rename protocol, "
        "not the shard write, is the commit point."
    )
    include = ("repro/scenario/checkpoint.py", "repro/replaystore/*")
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: LintContext) -> None:
        """Flag truncating writes that bypass ``repro.ioutil``."""
        suggestion = (
            "route the write through repro.ioutil "
            "(atomic_write_json/atomic_write_text/atomic_open)"
        )
        if ctx.resolve(node.func) == "json.dump":
            ctx.report(
                self, node, "json.dump writes through a live handle", suggestion
            )
            return
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id == "open"
            and func.id not in ctx.aliases
        ):
            mode = None
            if len(node.args) >= 2:
                mode = node.args[1]
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
            if (
                isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and "w" in mode.value
            ):
                ctx.report(
                    self,
                    node,
                    f"bare open(..., {mode.value!r}) truncates the final path",
                    suggestion,
                )
        elif isinstance(func, ast.Attribute) and func.attr == "write_text":
            ctx.report(
                self, node, "Path.write_text truncates the final path", suggestion
            )


@register
class ErrorTaxonomyRule(Rule):
    """RPL005: raise the repro error taxonomy, not bare builtins."""

    id = "RPL005"
    name = "error-taxonomy"
    rationale = (
        "Callers catch ReproError at API boundaries (the CLI turns it "
        "into exit 2); validation that raises bare ValueError or "
        "RuntimeError escapes that contract, so corruption tests cannot "
        "distinguish an intentional rejection from a genuine bug.  Raise "
        "ConfigError/DataError/StoreError... from repro.errors instead.  "
        "NotImplementedError (abstract hooks) and AssertionError "
        "(self-checks) remain legitimate."
    )
    node_types = (ast.Raise,)

    _BANNED = frozenset({"ValueError", "RuntimeError", "Exception"})

    def check(self, node: ast.Raise, ctx: LintContext) -> None:
        """Flag ``raise ValueError/RuntimeError/Exception`` statements."""
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in self._BANNED:
            ctx.report(
                self,
                node,
                f"bare {exc.id} raised from library code",
                "raise the matching repro.errors type (ConfigError, "
                "DataError, StoreError, ...) so ReproError catches it",
            )


@register
class LazyStepsRule(Rule):
    """RPL006: ``Scenario.steps`` implementations must stream lazily."""

    id = "RPL006"
    name = "lazy-steps"
    rationale = (
        "Scenario streams are consumed one step at a time so a 100-step "
        "streaming run materializes one step's datasets, not all of "
        "them; the conformance suite probes laziness with an exploding "
        "generator.  A steps() that returns a prebuilt list defeats "
        "both, and the failure only shows up as memory growth at scale.  "
        "steps() must be a generator function or return a lazy iterator."
    )
    include = ("repro/scenario/*",)
    node_types = (ast.FunctionDef,)

    @staticmethod
    def _own_nodes(func: ast.FunctionDef):
        """Walk the function body without descending into nested defs."""
        stack = list(func.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def check(self, node: ast.FunctionDef, ctx: LintContext) -> None:
        """Flag non-generator ``steps`` that return eager sequences."""
        if node.name != "steps":
            return
        eager_returns = []
        for child in self._own_nodes(node):
            if isinstance(child, (ast.Yield, ast.YieldFrom)):
                return  # a generator function is lazy by construction
            if isinstance(child, ast.Return):
                eager_returns.append(child)
        for ret in eager_returns:
            value = ret.value
            eager = isinstance(value, (ast.List, ast.ListComp, ast.Tuple)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("list", "sorted", "tuple")
            )
            if eager:
                ctx.report(
                    self,
                    ret,
                    "steps() returns an eagerly materialized sequence",
                    "make steps() a generator (yield one ContinualStep at "
                    "a time) or return a lazy iterator",
                )


@register
class FrozenSpecRule(Rule):
    """RPL007: spec/config dataclasses must be ``frozen=True``."""

    id = "RPL007"
    name = "frozen-specs"
    rationale = (
        "Run identity is computed from spec reprs (checkpoint "
        "fingerprints, scenario cache keys, backend SweepSpecs pinned at "
        "forward time); a mutable spec can change after it has been "
        "fingerprinted, silently invalidating resume compatibility and "
        "cache correctness.  Dataclasses in the spec-carrying modules "
        "must declare frozen=True."
    )
    include = (
        "repro/core/replayspec.py",
        "repro/scenario/*",
        "repro/snn/backends/base.py",
    )
    node_types = (ast.ClassDef,)

    def _dataclass_decorator(self, node: ast.ClassDef, ctx: LintContext):
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            if isinstance(target, ast.Name) and target.id == "dataclass":
                return decorator
            if ctx.resolve(target) == "dataclasses.dataclass":
                return decorator
        return None

    def check(self, node: ast.ClassDef, ctx: LintContext) -> None:
        """Flag ``@dataclass`` declarations without ``frozen=True``."""
        decorator = self._dataclass_decorator(node, ctx)
        if decorator is None:
            return
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "frozen"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return
        ctx.report(
            self,
            node,
            f"spec dataclass {node.name} is not frozen",
            "declare @dataclass(frozen=True) so reprs/fingerprints "
            "cannot drift after construction",
        )


@register
class NoPrintRule(Rule):
    """RPL008: no ``print()`` outside the CLI layer."""

    id = "RPL008"
    name = "no-print"
    rationale = (
        "Library output belongs to the obs layer (spans/metrics) or to "
        "returned strings the CLI decides to show; a stray print() in "
        "library code corrupts machine-readable output (--format json, "
        "trace exports) and cannot be silenced by callers.  Only "
        "repro/cli.py and repro/__main__.py talk to stdout directly."
    )
    exclude = ("repro/cli.py", "repro/__main__.py")
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: LintContext) -> None:
        """Flag calls to the ``print`` builtin."""
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id == "print"
            and func.id not in ctx.aliases
        ):
            ctx.report(
                self,
                node,
                "print() in library code",
                "return the text to the CLI layer or record it via "
                "repro.obs spans/metrics",
            )


@register
class NumpySaveRule(Rule):
    """RPL009: ``np.save*`` must write through an ``atomic_open`` handle."""

    id = "RPL009"
    name = "atomic-numpy-save"
    rationale = (
        "np.save/np.savez/np.savez_compressed given a *path* open and "
        "truncate the final file themselves, bypassing the write-then-"
        "atomic-rename protocol that RPL004 enforces for text/json — a "
        "crash mid-save leaves a torn archive at the committed name "
        "(np.load then fails on what looks like a valid checkpoint or "
        "dataset).  Passing an open file object instead routes the bytes "
        "wherever the caller says, so the blessed pattern is "
        "`with atomic_open(path, 'wb') as handle: np.savez(handle, ...)` "
        "— the rename commits only a complete archive."
    )
    node_types = (ast.Call,)

    _BANNED = frozenset(
        {"numpy.save", "numpy.savez", "numpy.savez_compressed"}
    )
    _ATOMIC_OPENERS = frozenset(
        {"repro.ioutil.atomic_open", "atomic_open"}
    )

    def _atomic_handles(self, ctx: LintContext) -> frozenset[str]:
        """Names bound by ``with atomic_open(...) as NAME`` in this file.

        Computed once per file and cached on the context; a name is only
        as trustworthy as the binding site, which is why the check is
        per-file not per-scope — good enough to catch path-passing while
        never flagging the blessed pattern.
        """
        cached = getattr(ctx, "_rpl009_handles", None)
        if cached is not None:
            return cached
        handles = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                call = item.context_expr
                if not isinstance(call, ast.Call):
                    continue
                resolved = ctx.resolve(call.func)
                if resolved is None and isinstance(call.func, ast.Name):
                    resolved = call.func.id
                if resolved not in self._ATOMIC_OPENERS:
                    continue
                target = item.optional_vars
                if isinstance(target, ast.Name):
                    handles.add(target.id)
        ctx._rpl009_handles = frozenset(handles)
        return ctx._rpl009_handles

    def check(self, node: ast.Call, ctx: LintContext) -> None:
        """Flag ``np.save*`` calls whose destination is not a handle."""
        full = ctx.resolve(node.func)
        if full not in self._BANNED:
            return
        destination = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "file":
                destination = keyword.value
        if isinstance(destination, ast.Name) and destination.id in (
            self._atomic_handles(ctx)
        ):
            return
        ctx.report(
            self,
            node,
            f"{full}() writes (and truncates) the destination path itself",
            "open the destination with repro.ioutil.atomic_open(path, "
            "'wb') and pass the handle to the save call",
        )
