"""Project-specific invariant linter (``repro lint``).

The reproduction's headline guarantees — bitwise-identical training
trajectories, crash-safe atomic checkpoints, lazy scenario streams,
injectable clocks, and environment access routed through
:data:`repro.config.ENV_FLAGS` — are behavioural contracts that
example-based tests only sample.  This package turns them into
machine-checked rules: a single-pass AST visitor (stdlib :mod:`ast`, no
new runtime dependencies) dispatches every node to the registered
:class:`~repro.lint.framework.Rule` instances whose file-scope globs
match, and emits structured :class:`~repro.lint.framework.Finding`
records (``path:line``, rule id, message, suggestion).

Rules ship in :mod:`repro.lint.rules` (``RPL001``–``RPL008``; see
``docs/lint.md`` for the catalog and the rationale behind each).
Intentional violations carry an inline suppression **with a reason**::

    rng = np.random.default_rng(0)  # repro-lint: disable=RPL001 -- fixed-seed probe

A suppression without a reason (or naming an unknown rule) is itself a
finding (``RPL000``), so exceptions to the contracts stay documented.

Entry points:

- CLI: ``repro lint [paths...] [--format text|json]`` — exit 2 on
  findings, 0 when clean.
- API: :func:`lint_source` / :func:`lint_paths` for tests and tooling.
"""

from repro.lint.framework import (
    Finding,
    Rule,
    all_rules,
    get_rule,
    lint_source,
    rule_ids,
)
from repro.lint.runner import format_json, format_text, lint_file, lint_paths
from repro.lint import rules  # noqa: F401  (importing registers the built-in rules)

__all__ = [
    "Finding",
    "Rule",
    "all_rules",
    "get_rule",
    "rule_ids",
    "lint_source",
    "lint_file",
    "lint_paths",
    "format_text",
    "format_json",
]
