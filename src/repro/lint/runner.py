"""File/directory walking and output formatting for ``repro lint``.

The runner is deliberately tiny: :func:`lint_paths` expands directories
to sorted ``*.py`` files (deterministic finding order), delegates to
:func:`repro.lint.framework.lint_source`, and the two formatters render
the aggregate — human text or the versioned JSON schema CI archives as
an artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigError
from repro.lint.framework import Finding, lint_source

__all__ = ["JSON_SCHEMA_VERSION", "lint_file", "lint_paths", "format_text", "format_json"]

#: Version of the ``--format json`` document; bump on shape changes.
JSON_SCHEMA_VERSION = 1


def lint_file(path: str | Path) -> list[Finding]:
    """Lint one Python file from disk."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigError(f"cannot read {path}: {error}") from None
    return lint_source(source, path=str(path))


def lint_paths(paths: list[str | Path]) -> list[Finding]:
    """Lint files and/or directories (recursed, sorted); aggregate findings.

    Raises:
        ConfigError: If a path does not exist or a file is unreadable.
    """
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        elif entry.is_file():
            files.append(entry)
        else:
            raise ConfigError(f"no such file or directory: {entry}")
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path))
    return findings


def format_text(findings: list[Finding]) -> str:
    """Human-readable report: one block per finding plus a total."""
    if not findings:
        return "no findings"
    blocks = [finding.format() for finding in findings]
    blocks.append(f"{len(findings)} finding(s)")
    return "\n".join(blocks)


def format_json(findings: list[Finding]) -> str:
    """The versioned JSON document (``{"version", "count", "findings"}``)."""
    return json.dumps(
        {
            "version": JSON_SCHEMA_VERSION,
            "count": len(findings),
            "findings": [finding.to_dict() for finding in findings],
        },
        indent=1,
    )
