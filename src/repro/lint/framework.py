"""Rule framework of the invariant linter.

One linting pass over a file is:

1. parse the source with :mod:`ast` (a syntax error becomes an
   ``RPL000`` finding — the linter never crashes on bad input);
2. collect the module's import aliases so rules can resolve dotted
   call chains (``np.random.shuffle`` → ``numpy.random.shuffle``)
   without guessing at local variable names;
3. run a **single** :class:`ast.NodeVisitor` pass that dispatches each
   node to every registered rule whose ``node_types`` include the node's
   type and whose include/exclude globs match the file;
4. apply inline suppressions: a ``# repro-lint: disable=RPLxxx -- reason``
   comment on the flagged line silences matching findings, and a
   suppression that is missing its reason or names an unknown rule is
   reported as ``RPL000`` (which cannot itself be suppressed).

File scoping mirrors ruff's per-file-ignores: globs are matched with
:func:`fnmatch.fnmatch` against the module-relative posix path
(``repro/snn/layers.py``), and ``*`` crosses directory separators, so
``repro/replaystore/*`` covers the whole package.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import asdict, dataclass
from fnmatch import fnmatch

from repro.errors import ConfigError

__all__ = [
    "META_RULE_ID",
    "Finding",
    "LintContext",
    "Rule",
    "Suppression",
    "all_rules",
    "get_rule",
    "lint_source",
    "module_relpath",
    "register",
    "rule_ids",
]

#: Rule id reserved for the linter's own diagnostics (malformed
#: suppressions, unparseable files).  Not suppressible.
META_RULE_ID = "RPL000"

_RULE_ID = re.compile(r"^RPL\d{3}$")

#: ``# repro-lint: disable=RPL001[,RPL002] [-- reason]`` anywhere in a line.
_SUPPRESSION = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<ids>[A-Za-z0-9_,\s]*?)"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One structured lint finding.

    Attributes:
        path: The path the file was linted under (as given to the
            runner, so CLI output is clickable from the repo root).
        line: 1-indexed source line of the offending node.
        col: 1-indexed column of the offending node.
        rule: Rule id, e.g. ``"RPL003"``.
        message: What is wrong, in terms of the violated invariant.
        suggestion: The blessed alternative (helper, module, pattern).
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    suggestion: str

    def format(self) -> str:
        """``path:line:col: RPLxxx message`` plus an indented suggestion."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.suggestion:
            text += f"\n    fix: {self.suggestion}"
        return text

    def to_dict(self) -> dict:
        """JSON-ready mapping (the ``--format json`` schema element)."""
        return asdict(self)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro-lint: disable=...`` comment."""

    line: int
    ids: tuple[str, ...]
    reason: str | None


class Rule:
    """Base class of one lint rule.

    Subclasses declare:

    - ``id``: ``"RPLxxx"`` (unique across the registry);
    - ``name``: short kebab-case label used in docs and summaries;
    - ``rationale``: one paragraph on the invariant being protected;
    - ``include`` / ``exclude``: fnmatch globs over the module-relative
      posix path (``repro/...``) scoping where the rule applies;
    - ``node_types``: the :mod:`ast` node classes the visitor should
      dispatch to :meth:`check`.

    Rules are stateless: per-file state lives on the
    :class:`LintContext` passed to every :meth:`check` call.
    """

    id: str = ""
    name: str = ""
    rationale: str = ""
    include: tuple[str, ...] = ("*",)
    exclude: tuple[str, ...] = ()
    node_types: tuple[type[ast.AST], ...] = ()

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule is in scope for ``relpath``."""
        return any(fnmatch(relpath, glob) for glob in self.include) and not any(
            fnmatch(relpath, glob) for glob in self.exclude
        )

    def check(self, node: ast.AST, ctx: "LintContext") -> None:
        """Inspect one dispatched node, reporting via ``ctx.report``."""
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (one instance).

    Raises:
        ConfigError: On a malformed id or a duplicate registration.
    """
    rule = rule_cls()
    if not _RULE_ID.match(rule.id):
        raise ConfigError(f"rule id must match RPLxxx, got {rule.id!r}")
    if rule.id in _REGISTRY:
        raise ConfigError(f"duplicate rule id {rule.id}")
    if not rule.name or not rule.rationale:
        raise ConfigError(f"rule {rule.id} must declare a name and a rationale")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by id."""
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def rule_ids() -> tuple[str, ...]:
    """Sorted ids of every registered rule."""
    return tuple(sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    """Look up one registered rule by id.

    Raises:
        ConfigError: If ``rule_id`` is not registered.
    """
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise ConfigError(
            f"unknown lint rule {rule_id!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def module_relpath(path: str) -> str:
    """Module-relative posix path used for rule scoping.

    ``src/repro/snn/layers.py`` → ``repro/snn/layers.py``; paths that do
    not contain a ``repro`` segment fall back to their basename, so
    out-of-tree files still lint (with only globally-scoped rules).
    """
    parts = str(path).replace("\\", "/").split("/")
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[anchor:])
    return parts[-1]


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted import path they are bound to."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue  # relative imports never reach stdlib/numpy names
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


class LintContext:
    """Per-file state shared by every rule during one pass.

    Attributes:
        path: The path the file is linted under (verbatim in findings).
        relpath: Module-relative path used for rule scoping.
        source: Full source text.
        lines: Source split into lines (1-indexed via ``lines[i - 1]``).
        tree: The parsed module.
        aliases: Import-alias map (see :func:`_collect_aliases`).
        findings: Accumulated findings, pre-suppression.
    """

    def __init__(self, path: str, relpath: str, source: str, tree: ast.Module):
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.aliases = _collect_aliases(tree)
        self.findings: list[Finding] = []

    def report(
        self, rule: Rule, node: ast.AST, message: str, suggestion: str = ""
    ) -> None:
        """Record one finding anchored at ``node``."""
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule.id,
                message=message,
                suggestion=suggestion,
            )
        )

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted import path of a ``Name``/``Attribute`` chain, or None.

        Only chains rooted at an *imported* name resolve — a local
        variable that happens to be called ``random`` never
        false-positives.  ``np.random.shuffle`` (with ``import numpy as
        np``) resolves to ``numpy.random.shuffle``; ``environ.get``
        (with ``from os import environ``) resolves to
        ``os.environ.get``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            return None
        return ".".join([base, *reversed(parts)])


class _Visitor(ast.NodeVisitor):
    """Single-pass dispatcher: every node goes to every in-scope rule."""

    def __init__(self, ctx: LintContext, dispatch: dict[type, list[Rule]]):
        self._ctx = ctx
        self._dispatch = dispatch

    def visit(self, node: ast.AST) -> None:
        """Dispatch ``node`` to the in-scope rules, then recurse."""
        for rule in self._dispatch.get(type(node), ()):
            rule.check(node, self._ctx)
        self.generic_visit(node)


def _parse_suppressions(source: str) -> list[Suppression]:
    """Extract suppressions from real comment tokens only.

    Tokenizing (rather than scanning raw lines) means a docstring or
    string literal that merely *mentions* the suppression syntax — this
    module's own documentation, for instance — is never parsed as one.
    """
    found = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT or "repro-lint" not in token.string:
                continue
            match = _SUPPRESSION.search(token.string)
            if match is None:
                continue
            ids = tuple(
                part.strip()
                for part in match.group("ids").split(",")
                if part.strip()
            )
            found.append(
                Suppression(
                    line=token.start[0], ids=ids, reason=match.group("reason")
                )
            )
    except tokenize.TokenError:  # pragma: no cover - ast.parse accepted it
        pass
    return found


def _meta_finding(path: str, line: int, message: str, suggestion: str) -> Finding:
    return Finding(
        path=path,
        line=line,
        col=1,
        rule=META_RULE_ID,
        message=message,
        suggestion=suggestion,
    )


def _apply_suppressions(
    path: str, findings: list[Finding], suppressions: list[Suppression]
) -> list[Finding]:
    """Filter suppressed findings; report malformed suppressions.

    A suppression only takes effect when it carries a reason and names
    registered rules; otherwise it is reported (``RPL000``) *and* the
    findings it tried to silence stay.
    """
    kept: list[Finding] = []
    valid: dict[int, set[str]] = {}
    for sup in suppressions:
        problems = []
        if not sup.ids:
            problems.append("no rule ids")
        unknown = [rule_id for rule_id in sup.ids if rule_id not in _REGISTRY]
        if unknown:
            problems.append(f"unknown rule id(s) {', '.join(unknown)}")
        if META_RULE_ID in sup.ids:
            problems.append(f"{META_RULE_ID} is not suppressible")
        if not sup.reason:
            problems.append("missing the mandatory reason")
        if problems:
            kept.append(
                _meta_finding(
                    path,
                    sup.line,
                    f"malformed suppression ({'; '.join(problems)})",
                    "write `# repro-lint: disable=RPLxxx -- <why this "
                    "violation is intentional>`",
                )
            )
        else:
            valid.setdefault(sup.line, set()).update(sup.ids)
    for finding in findings:
        if finding.rule in valid.get(finding.line, ()):
            continue
        kept.append(finding)
    return kept


def lint_source(
    source: str, path: str = "<memory>", relpath: str | None = None
) -> list[Finding]:
    """Lint one module's source; the core entry point.

    Args:
        source: Python source text.
        path: Path reported in findings (and, by default, used to derive
            the scoping relpath).
        relpath: Override for the module-relative scoping path — tests
            use this to place an inline fixture "inside" any package.

    Returns:
        Findings sorted by (line, col, rule), suppressions applied.
    """
    relpath = relpath if relpath is not None else module_relpath(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            _meta_finding(
                path,
                error.lineno or 1,
                f"file does not parse: {error.msg}",
                "fix the syntax error; the linter only checks valid modules",
            )
        ]
    ctx = LintContext(path=path, relpath=relpath, source=source, tree=tree)
    dispatch: dict[type, list[Rule]] = {}
    for rule in all_rules():
        if not rule.node_types or not rule.applies_to(relpath):
            continue
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    if dispatch:
        _Visitor(ctx, dispatch).visit(tree)
    findings = _apply_suppressions(
        path, ctx.findings, _parse_suppressions(source)
    )
    return sorted(findings, key=lambda f: (f.line, f.col, f.rule))
