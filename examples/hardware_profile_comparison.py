"""Cost the same NCL run on three hardware targets.

The paper targets embedded neuromorphic deployments; this example shows
how the latency/energy picture shifts between an event-driven embedded
SoC, a Loihi-class chip, and a dense edge-GPU-like accelerator — using
identical op-count ledgers from one Replay4NCL run.

Run:  python examples/hardware_profile_comparison.py [--scale ci|bench]
"""

import argparse

from repro.core import Replay4NCL, SpikingLR, run_method
from repro.core.pipeline import pretrain
from repro.data import SyntheticSHD, make_class_incremental
from repro.eval.scale import get_scale
from repro.hw import (
    EnergyModel,
    LatencyModel,
    edge_gpu_like,
    embedded_neuromorphic,
    loihi_like,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", choices=("ci", "bench"))
    args = parser.parse_args()

    preset = get_scale(args.scale)
    experiment = preset.experiment
    generator = SyntheticSHD(preset.shd, seed=experiment.seed)
    split = make_class_incremental(
        generator,
        experiment.samples_per_class,
        experiment.test_samples_per_class,
        num_pretrain_classes=experiment.num_pretrain_classes,
    )
    pretrained = pretrain(experiment, split)
    sota = run_method(SpikingLR(experiment), pretrained, split)
    ours = run_method(Replay4NCL(experiment), pretrained, split)

    print(f"{'profile':24s} {'method':12s} {'latency [s]':>12s} {'energy [J]':>12s} "
          f"{'speedup':>8s} {'saving':>8s}")
    for profile in (embedded_neuromorphic(), loihi_like(), edge_gpu_like()):
        latency_model = LatencyModel(profile)
        energy_model = EnergyModel(profile)
        sota_lat = latency_model.run_latency(sota)
        ours_lat = latency_model.run_latency(ours)
        sota_en = energy_model.run_energy(sota)
        ours_en = energy_model.run_energy(ours)
        print(f"{profile.name:24s} {'spikinglr':12s} {sota_lat:12.4g} {sota_en:12.4g}")
        print(
            f"{'':24s} {'replay4ncl':12s} {ours_lat:12.4g} {ours_en:12.4g} "
            f"{sota_lat / ours_lat:7.2f}x {1 - ours_en / sota_en:7.1%}"
        )


if __name__ == "__main__":
    main()
