"""Task-incremental vs class-incremental: what knowing the task id buys.

The same class stream can be evaluated in two standard regimes:

- **class-incremental** (``sequential``): inference must pick among all
  classes seen so far — the hard setting the paper evaluates.
- **task-incremental** (``task-incremental``): the task id is available
  at inference and the readout is masked to the active task's classes
  (per-task readout masks) — the milder regime with its own forgetting
  profile, reported alongside class-IL by latent-replay systems.

Training is bitwise-identical between the two runs at the same seed —
replay and the optimizer never see the task ids — so the whole gap in
the metrics below is the value of the task id at inference time.

Run:  python examples/task_incremental.py [--steps N]
"""

import argparse

import numpy as np

from repro.eval.scale import get_scale
from repro.scenario import get as get_scenario
from repro.scenario import run_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=2,
                        help="number of continual steps (ci scale has 5 classes: "
                             "3 base + up to 2 steps)")
    args = parser.parse_args()

    num_classes = get_scale("ci").shd.num_classes
    if num_classes - args.steps < 2:
        raise SystemExit("too many steps for the ci class count")

    task_il = run_scenario(
        get_scenario("task-incremental", steps_count=args.steps),
        "replay4ncl", scale="ci",
    )
    class_il = run_scenario(
        get_scenario("sequential", steps_count=args.steps),
        "replay4ncl", scale="ci",
    )

    print("task-incremental (readout masked to the active task):")
    print(task_il.describe())
    print("\nclass-incremental (same stream, unmasked inference):")
    print(class_il.describe())

    print("\nsession-by-task accuracy matrices (task-IL | class-IL):")
    with np.printoptions(precision=3, nanstr="  -  "):
        print(task_il.accuracy_matrix)
        print(class_il.accuracy_matrix)

    print(
        f"\ntask-id advantage: "
        f"{task_il.average_accuracy - class_il.average_accuracy:+.3f} "
        "average accuracy on identically-trained networks"
    )
    print(f"per-task class groups: {task_il.task_classes}")


if __name__ == "__main__":
    main()
