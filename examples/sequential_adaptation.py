"""Multi-step continual learning: a stream of new classes.

The paper evaluates one continual step (19 classes -> +1); a deployed
agent keeps encountering new classes.  This example chains Replay4NCL
steps — each starting from the previous step's network, with the replay
pool regenerated to cover everything seen so far — and reports how
old-task accuracy holds up as forgetting pressure compounds.

Run:  python examples/sequential_adaptation.py [--steps N]
"""

import argparse

from repro.core import Replay4NCL, make_sequential_splits, run_sequential
from repro.core.pipeline import pretrain
from repro.data import SyntheticSHD
from repro.data.tasks import make_class_incremental
from repro.eval.ascii_plot import ascii_bars
from repro.eval.scale import get_scale


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=2,
                        help="number of continual steps (ci scale has 5 classes: "
                             "3 base + up to 2 steps)")
    args = parser.parse_args()

    preset = get_scale("ci")
    base_classes = preset.shd.num_classes - args.steps
    if base_classes < 2:
        raise SystemExit("too many steps for the ci class count")

    experiment = preset.experiment.replace(num_pretrain_classes=base_classes)
    generator = SyntheticSHD(preset.shd, seed=experiment.seed)

    print(f"pre-training on classes 0..{base_classes - 1}")
    base_split = make_class_incremental(
        generator,
        experiment.samples_per_class,
        experiment.test_samples_per_class,
        num_pretrain_classes=base_classes,
    )
    pretrained = pretrain(experiment, base_split)
    print(f"  base accuracy: {pretrained.test_accuracy:.3f}\n")

    splits = make_sequential_splits(
        generator,
        experiment.samples_per_class,
        experiment.test_samples_per_class,
        base_classes=base_classes,
        steps=args.steps,
    )
    print(f"learning {args.steps} new classes sequentially with Replay4NCL")
    result = run_sequential(lambda k: Replay4NCL(experiment), pretrained.network, splits)
    print(result.describe())

    print("\nold-task accuracy after each step (forgetting accumulation):")
    print(ascii_bars({
        "old-acc": {
            f"step{i}": acc for i, acc in enumerate(result.old_accuracy_trajectory)
        }
    }))


if __name__ == "__main__":
    main()
