"""Multi-step continual learning: a stream of new classes.

The paper evaluates one continual step (19 classes -> +1); a deployed
agent keeps encountering new classes.  The ``sequential`` scenario
chains Replay4NCL steps — each starting from the previous step's
network, with the replay pool regenerated to cover everything seen so
far — and ``run_scenario`` scores the whole trajectory with the
standard continual-learning metrics (average accuracy, forgetting,
backward transfer) on the session-by-task accuracy matrix.

Run:  python examples/sequential_adaptation.py [--steps N]
"""

import argparse

import numpy as np

from repro.eval.ascii_plot import ascii_bars
from repro.eval.scale import get_scale
from repro.scenario import get as get_scenario
from repro.scenario import run_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=2,
                        help="number of continual steps (ci scale has 5 classes: "
                             "3 base + up to 2 steps)")
    args = parser.parse_args()

    num_classes = get_scale("ci").shd.num_classes
    if num_classes - args.steps < 2:
        raise SystemExit("too many steps for the ci class count")

    scenario = get_scenario("sequential", steps_count=args.steps)
    print(f"running scenario: {scenario.describe()}")
    result = run_scenario(scenario, "replay4ncl", scale="ci")
    print(result.describe())

    print("\nsession-by-task accuracy matrix (rows: after each session):")
    with np.printoptions(precision=3, nanstr="  -  "):
        print(result.accuracy_matrix)

    print("\nold-task accuracy after each step (forgetting accumulation):")
    print(ascii_bars({
        "old-acc": {
            f"step{i}": acc for i, acc in enumerate(result.old_accuracy_trajectory)
        }
    }))


if __name__ == "__main__":
    main()
