"""Quickstart: train a spiking network, then learn a new class with Replay4NCL.

Walks the paper's full pipeline at a small scale (about a minute on a
laptop CPU):

1. synthesize an SHD-like event dataset and a class-incremental split,
2. pre-train the recurrent SNN on the old classes (Alg. 1 lines 1-5),
3. run Replay4NCL to learn the held-out class without forgetting,
4. report accuracy, latent memory, and modelled latency/energy.

Run:  python examples/quickstart.py [--scale ci|bench]
"""

import argparse

from repro.core import Replay4NCL, SpikingLR, run_method
from repro.core.pipeline import pretrain
from repro.data import SyntheticSHD, make_class_incremental
from repro.eval.scale import get_scale
from repro.hw import build_cost_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", choices=("ci", "bench"),
                        help="preset size (ci is fastest)")
    args = parser.parse_args()

    preset = get_scale(args.scale)
    experiment = preset.experiment

    print(f"# 1. Synthesizing data ({preset.description})")
    generator = SyntheticSHD(preset.shd, seed=experiment.seed)
    split = make_class_incremental(
        generator,
        experiment.samples_per_class,
        experiment.test_samples_per_class,
        num_pretrain_classes=experiment.num_pretrain_classes,
    )
    print(f"   {split.describe()}")

    print("# 2. Pre-training on the old classes")
    pretrained = pretrain(experiment, split)
    print(f"   pre-train test accuracy: {pretrained.test_accuracy:.3f}")

    print("# 3. Continual learning with Replay4NCL (and SpikingLR for reference)")
    ours = run_method(Replay4NCL(experiment), pretrained, split)
    sota = run_method(SpikingLR(experiment), pretrained, split)
    print(f"   {ours.summary()}")
    print(f"   {sota.summary()}")

    print("# 4. Embedded cost comparison (analytic hardware model)")
    report = build_cost_report([("spikinglr", sota), ("replay4ncl", ours)])
    print(report.format_table())


if __name__ == "__main__":
    main()
