"""Quickstart: train a spiking network, then learn a new class with Replay4NCL.

Walks the paper's full pipeline at a small scale (about a minute on a
laptop CPU), using the scenario-first run API:

1. synthesize an SHD-like event dataset and pre-train on the old
   classes (Alg. 1 lines 1-5),
2. run the ``single-step`` scenario (the paper's 19+1 protocol) with
   Replay4NCL — and with SpikingLR for reference — via
   ``run_scenario``, which also reports the standard continual-learning
   metrics (average accuracy, forgetting, backward transfer),
3. report accuracy, latent memory, and modelled latency/energy.

Run:  python examples/quickstart.py [--scale ci|bench]
"""

import argparse

from repro.core.pipeline import pretrain
from repro.data import SyntheticSHD
from repro.eval.scale import get_scale
from repro.hw import build_cost_report
from repro.scenario import get as get_scenario
from repro.scenario import run_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", choices=("ci", "bench"),
                        help="preset size (ci is fastest)")
    args = parser.parse_args()

    preset = get_scale(args.scale)
    experiment = preset.experiment

    print(f"# 1. Synthesizing data and pre-training ({preset.description})")
    generator = SyntheticSHD(preset.shd, seed=experiment.seed)
    scenario = get_scenario("single-step")
    first = next(scenario.steps(generator, experiment))
    print(f"   {first.split.describe()}")
    pretrained = pretrain(experiment, first.split)
    print(f"   pre-train test accuracy: {pretrained.test_accuracy:.3f}")

    print("# 2. Continual learning with Replay4NCL (and SpikingLR for reference)")
    shared = dict(generator=generator, experiment=experiment, pretrained=pretrained)
    ours = run_scenario(scenario, "replay4ncl", **shared)
    sota = run_scenario(scenario, "spikinglr", **shared)
    print(f"   {ours.steps[0].summary()}")
    print(f"   {sota.steps[0].summary()}")
    print(f"   replay4ncl CL metrics: avg={ours.average_accuracy:.3f} "
          f"forgetting={ours.forgetting:+.3f} BWT={ours.backward_transfer:+.3f}")

    print("# 3. Embedded cost comparison (analytic hardware model)")
    report = build_cost_report(
        [("spikinglr", sota.steps[0]), ("replay4ncl", ours.steps[0])]
    )
    print(report.format_table())


if __name__ == "__main__":
    main()
