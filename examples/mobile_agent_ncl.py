"""Mobile-agent scenario: the paper's Fig. 1(b) motivation, end to end.

An SNN-based drone is pre-trained to recognize a set of acoustic
commands, then deployed to a remote environment where a new command
class appears.  Retraining naively forgets the old commands
(catastrophic forgetting); Replay4NCL learns the new one on-device
within a tight latency/energy/memory envelope.

The script compares three strategies on the embedded-neuromorphic cost
model and prints a mission-readiness table.

Run:  python examples/mobile_agent_ncl.py [--scale ci|bench]
"""

import argparse

from repro.core import NaiveFinetune, Replay4NCL, SpikingLR, run_method
from repro.core.pipeline import pretrain
from repro.data import SyntheticSHD, make_class_incremental
from repro.eval.scale import get_scale
from repro.hw import EnergyModel, LatencyModel, build_cost_report, embedded_neuromorphic


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", choices=("ci", "bench"))
    parser.add_argument("--battery-j", type=float, default=50.0,
                        help="energy budget available for on-device adaptation")
    args = parser.parse_args()

    preset = get_scale(args.scale)
    experiment = preset.experiment

    print("== Phase 1: lab pre-training ==")
    generator = SyntheticSHD(preset.shd, seed=experiment.seed)
    split = make_class_incremental(
        generator,
        experiment.samples_per_class,
        experiment.test_samples_per_class,
        num_pretrain_classes=experiment.num_pretrain_classes,
    )
    pretrained = pretrain(experiment, split)
    print(f"   command-set accuracy before deployment: {pretrained.test_accuracy:.3f}")

    print("\n== Phase 2: field adaptation — a new command class appears ==")
    strategies = [
        ("naive-retrain", NaiveFinetune(experiment)),
        ("spikinglr", SpikingLR(experiment)),
        ("replay4ncl", Replay4NCL(experiment)),
    ]
    results = [(name, run_method(method, pretrained, split))
               for name, method in strategies]

    for name, result in results:
        print(f"   {name:14s} old commands: {result.final_old_accuracy:.3f}  "
              f"new command: {result.final_new_accuracy:.3f}")

    print("\n== Phase 3: mission readiness on the embedded target ==")
    report = build_cost_report(results)
    print(report.format_table())

    profile = embedded_neuromorphic()
    energy_model = EnergyModel(profile)
    latency_model = LatencyModel(profile)
    print(f"\n   adaptation budget: {args.battery_j:.0f} J")
    for name, result in results:
        energy = energy_model.run_energy(result)
        latency = latency_model.run_latency(result)
        verdict = "OK" if energy <= args.battery_j else "EXCEEDS BUDGET"
        forgot = result.final_old_accuracy < pretrained.test_accuracy - 0.35
        mission = "mission-ready" if not forgot else "FORGOT OLD COMMANDS"
        print(f"   {name:14s} {energy:8.3g} J  {latency:8.3g} s  [{verdict}] [{mission}]")


if __name__ == "__main__":
    main()
