"""The replay-memory engine end to end: budget, stream, replay from disk.

Three acts:

1. **Streaming build** — latent task arrivals flow through a hard byte
   budget under each eviction policy (FIFO / reservoir / class-balanced)
   and land in a sharded on-disk store.
2. **Accounting** — the Fig. 12 latent-memory model is cross-checked
   against the actual shard bytes the store wrote.
3. **Store-backed NCL** — a full Replay4NCL run with the replay buffer
   resident on disk, verified bit-for-bit against the in-memory path.

Run:  python examples/replay_store_streaming.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import Replay4NCL, ReplaySpec, pretrain, run_method
from repro.data import SyntheticSHD, make_class_incremental
from repro.eval.scale import get_scale
from repro.hw.memory import audit_store
from repro.replaystore import StreamingStoreBuilder, get_policy


def streaming_budget_demo(workdir: Path) -> None:
    """Stream 600 skewed task arrivals through a 12 KiB budget."""
    frames, channels = 40, 48
    print(f"streaming 600 arrivals of [{frames} x {channels}] latent rasters")
    print("class skew 10:3:1, budget 12 KiB\n")
    print(f"{'policy':16s} {'kept':>5s} {'evicted':>8s} {'rejected':>9s}  class counts")
    for name in ("fifo", "reservoir", "class-balanced"):
        builder = StreamingStoreBuilder(
            12 * 1024,
            get_policy(name),
            stored_frames=frames,
            num_channels=channels,
            generated_timesteps=frames,
            rng=np.random.default_rng(7),
        )
        arrival_rng = np.random.default_rng(1)
        for _ in range(20):  # 20 chunks x 30 samples
            raster = (arrival_rng.random((frames, 30, channels)) < 0.1).astype(
                np.float32
            )
            labels = arrival_rng.choice([0, 1, 2], size=30, p=[10 / 14, 3 / 14, 1 / 14])
            builder.offer(raster, labels)
        store = builder.finalize(workdir / f"stream-{name}", shard_samples=16)
        counts = store.stats().class_counts
        print(
            f"{name:16s} {store.num_samples:5d} {builder.evicted:8d} "
            f"{builder.rejected:9d}  {counts}"
        )
    print()


def accounting_demo(workdir: Path) -> None:
    """Model-vs-disk audit of one of the streamed stores."""
    from repro.replaystore import ReplayStore

    store = ReplayStore.open(workdir / "stream-class-balanced")
    audit = audit_store(store)
    print("latent-memory accounting (class-balanced store):")
    print(f"  analytic model: {audit.modelled_bytes} B (bitmap + headers)")
    print(f"  codec payload:  {audit.payload_bytes} B "
          f"(saving {audit.payload_saving:.1%})")
    print(f"  on disk:        {audit.disk_bytes} B "
          f"(format overhead {audit.format_overhead_bytes} B)\n")


def store_backed_ncl(workdir: Path) -> None:
    """Full NCL run with replay resident on disk — exact parity."""
    preset = get_scale("ci")
    experiment = preset.experiment
    generator = SyntheticSHD(preset.shd, seed=experiment.seed)
    split = make_class_incremental(
        generator,
        experiment.samples_per_class,
        experiment.test_samples_per_class,
        num_pretrain_classes=experiment.num_pretrain_classes,
    )
    pretrained = pretrain(experiment, split)

    in_memory = run_method(Replay4NCL(experiment), pretrained, split)
    store_backed = run_method(
        Replay4NCL(experiment),
        pretrained,
        split,
        replay=ReplaySpec(store_dir=workdir / "ncl-store", shard_samples=4),
    )
    print("store-backed Replay4NCL (ci scale):")
    print(f"  in-memory:    {in_memory.summary()}")
    print(f"  store-backed: {store_backed.summary()}")
    identical = (
        in_memory.final_overall_accuracy == store_backed.final_overall_accuracy
        and [r.loss for r in in_memory.history]
        == [r.loss for r in store_backed.history]
    )
    print(f"  bitwise-identical trajectory via lazy ReplayStream: {identical}")
    print(f"  store at {store_backed.replay_store_path}")


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        streaming_budget_demo(workdir)
        accounting_demo(workdir)
        store_backed_ncl(workdir)
