"""Demonstrate the Fig. 7 spike-train codec and its alternatives.

Reproduces the paper's worked compression/decompression example
bit-for-bit, then compares the three codecs on real latent activations
from a pre-trained network.

Run:  python examples/codec_roundtrip.py
"""

import numpy as np

from repro.compression import TemporalSubsampleCodec, compare_codecs
from repro.core.latent_replay import LatentReplayBuffer
from repro.core.pipeline import pretrain
from repro.data import SyntheticSHD, make_class_incremental
from repro.eval.scale import get_scale


def paper_worked_example() -> None:
    """The exact bitstream from paper Fig. 7."""
    original = np.array(
        [1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1, 1, 1, 0], dtype=np.float32
    )[:, None]
    codec = TemporalSubsampleCodec(2)
    compressed = codec.compress(original)
    restored = codec.decompress(compressed, 14)

    def bits(raster):
        return " ".join(str(int(v)) for v in raster[:, 0])

    print("paper Fig. 7 worked example (factor 2):")
    print(f"  original:     {bits(original)}")
    print(f"  compressed:   {bits(compressed)}")
    print(f"  decompressed: {bits(restored)}")
    print(f"  spikes kept:  {int(restored.sum())}/{int(original.sum())}\n")


def latent_data_comparison() -> None:
    preset = get_scale("ci")
    experiment = preset.experiment
    generator = SyntheticSHD(preset.shd, seed=experiment.seed)
    split = make_class_incremental(
        generator,
        experiment.samples_per_class,
        experiment.test_samples_per_class,
        num_pretrain_classes=experiment.num_pretrain_classes,
    )
    pretrained = pretrain(experiment, split)
    buffer = LatentReplayBuffer.generate(
        pretrained.network,
        split.pretrain_train.sample_fraction(0.3, np.random.default_rng(0)),
        insertion_layer=experiment.ncl.insertion_layer,
        timesteps=experiment.pretrain.timesteps,
        compression_factor=1,
    )
    print(
        f"latent activations: {buffer.compressed.shape} "
        f"({buffer.compressed.mean():.3f} spike density)"
    )
    print(f"{'codec':48s} {'bytes':>8s} {'ratio':>6s} {'spikes kept':>12s}")
    for stats in compare_codecs(buffer.compressed, subsample_factor=2):
        print(
            f"{stats.codec:48s} {stats.stored_bytes:8d} "
            f"{stats.compression_ratio:6.2f} {stats.spike_retention:12.1%}"
        )


if __name__ == "__main__":
    paper_worked_example()
    latent_data_comparison()
