"""A long task stream on a memory budget: federated stores + prefetch.

The scenario the federation exists for: an embedded agent keeps meeting
new classes, and replay memory must stay flat no matter how long the
stream runs.  Three acts:

1. **Store-federated sequential NCL** — a 3-step class-incremental
   stream where every step persists its latent replay into a member
   store of one `FederatedReplayStore` and trains through a lazy,
   prefetching shard stream; peak resident replay memory is measured
   per step and compared against the dense buffer it replaces.
2. **Global budget** — the same stream under a hard byte budget across
   *all* steps' stores: after each step the federation rebalances,
   evicting across members class-balancedly, and the archive never
   exceeds the budget.
3. **Prefetch switch** — the identical run with `REPRO_PREFETCH`
   semantics (prefetch on vs off) verifying bit-identical trajectories.

Run:  python examples/long_task_sequence.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import Replay4NCL, ReplaySpec, make_sequential_splits, run_sequential
from repro.core.pipeline import pretrain
from repro.data import SyntheticSHD, make_class_incremental
from repro.eval.scale import get_scale
from repro.hw.memory import audit_federation
from repro.replaystore import FederatedReplayStore


def build_scenario():
    preset = get_scale("ci")
    generator = SyntheticSHD(preset.shd, seed=preset.experiment.seed)
    exp = preset.experiment.replace(num_pretrain_classes=2)
    base_split = make_class_incremental(
        generator,
        exp.samples_per_class,
        exp.test_samples_per_class,
        num_pretrain_classes=2,
    )
    print("pre-training the base network (2 classes)...")
    pretrained = pretrain(exp, base_split)
    splits = make_sequential_splits(
        generator,
        exp.samples_per_class,
        exp.test_samples_per_class,
        base_classes=2,
        steps=3,
    )
    return exp, pretrained.network, splits


def federated_run(exp, network, splits, workdir: Path):
    print("\n=== act 1: store-federated 3-step stream ===")
    result = run_sequential(
        lambda k: Replay4NCL(exp),
        network,
        splits,
        replay=ReplaySpec(store_dir=workdir / "federation", shard_samples=4),
    )
    print(result.describe())
    federation = FederatedReplayStore.open(result.store_root)
    print(f"\nfederation: {federation!r}")
    for k, step in enumerate(result.steps):
        member = federation.member(f"step-{k:03d}")
        dense_bytes = (
            4 * member.meta.stored_frames * member.num_samples
            * member.meta.num_channels
        )
        print(
            f"  step {k}: replay classes {sorted(set(member.labels.tolist()))}, "
            f"peak resident {step.replay_peak_resident_bytes} B "
            f"vs {dense_bytes} B dense "
            f"({step.replay_peak_resident_bytes / dense_bytes:.0%})"
        )
    audit = audit_federation(federation)
    print(
        f"archive: {audit.num_samples} samples in {audit.num_members} members, "
        f"{audit.disk_bytes} B on disk (model {audit.modelled_bytes} B)"
    )
    return result


def budgeted_run(exp, network, splits, workdir: Path, reference):
    print("\n=== act 2: the same stream under a global byte budget ===")
    probe = FederatedReplayStore.open(reference.store_root)
    budget = 12 * probe.sample_bytes
    print(f"budget: {budget} B (~12 samples across the whole stream)")
    result = run_sequential(
        lambda k: Replay4NCL(exp),
        network,
        splits,
        replay=ReplaySpec(
            store_dir=workdir / "budgeted",
            shard_samples=4,
            federation_budget_bytes=budget,
            federation_policy="class-balanced",
        ),
    )
    federation = FederatedReplayStore.open(result.store_root)
    stats = federation.stats()
    print(
        f"archive after 3 steps: {stats.num_samples} samples, "
        f"{stats.model_bytes} / {budget} B "
        f"({stats.budget_utilization:.0%} of budget)"
    )
    print(f"per-member survivors: {stats.member_samples}")
    print(f"class counts stay balanced: {stats.class_counts}")
    identical = all(
        np.array_equal(p.data, q.data)
        for a, b in zip(reference.steps, result.steps)
        for p, q in zip(a.network.parameters(), b.network.parameters())
    )
    print(f"trajectory unchanged by archival budget: {identical}")


def prefetch_parity(exp, network, splits, workdir: Path, reference):
    print("\n=== act 3: prefetch on vs off, bit-identical ===")
    result = run_sequential(
        lambda k: Replay4NCL(exp),
        network,
        splits,
        replay=ReplaySpec(
            store_dir=workdir / "no-prefetch", shard_samples=4, prefetch=False
        ),
    )
    identical = all(
        np.array_equal(p.data, q.data)
        for a, b in zip(reference.steps, result.steps)
        for p, q in zip(a.network.parameters(), b.network.parameters())
    )
    print(
        "final weights identical with the decode worker disabled: "
        f"{identical} (the thread only moves work, never changes it)"
    )


def main() -> None:
    exp, network, splits = build_scenario()
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        reference = federated_run(exp, network, splits, workdir)
        budgeted_run(exp, network, splits, workdir, reference)
        prefetch_parity(exp, network, splits, workdir, reference)


if __name__ == "__main__":
    main()
