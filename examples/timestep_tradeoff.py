"""Explore the timestep/accuracy/cost trade-off (paper §III-A, Fig. 8).

Sweeps the NCL timestep T* for Replay4NCL and prints, per setting:
old/new-task accuracy, modelled per-epoch latency, and latent memory —
the numbers an embedded deployment would use to pick T*.

Run:  python examples/timestep_tradeoff.py [--scale ci|bench]
"""

import argparse

from repro.core import Replay4NCL, run_method
from repro.core.pipeline import pretrain
from repro.data import SyntheticSHD, make_class_incremental
from repro.eval.ascii_plot import ascii_bars
from repro.eval.scale import get_scale
from repro.hw import LatencyModel, embedded_neuromorphic


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", choices=("ci", "bench"))
    args = parser.parse_args()

    preset = get_scale(args.scale)
    experiment = preset.experiment
    t_pre = experiment.pretrain.timesteps

    generator = SyntheticSHD(preset.shd, seed=experiment.seed)
    split = make_class_incremental(
        generator,
        experiment.samples_per_class,
        experiment.test_samples_per_class,
        num_pretrain_classes=experiment.num_pretrain_classes,
    )
    pretrained = pretrain(experiment, split)
    print(f"pre-train accuracy at T={t_pre}: {pretrained.test_accuracy:.3f}\n")

    latency_model = LatencyModel(embedded_neuromorphic())
    fractions = (1.0, 0.6, 0.4, 0.2)
    rows = {}
    print(f"{'T*':>5s} {'old acc':>8s} {'new acc':>8s} {'epoch lat':>10s} {'latent B':>9s}")
    for fraction in fractions:
        timesteps = max(int(round(t_pre * fraction)), 2)
        result = run_method(
            Replay4NCL(experiment, timesteps=timesteps), pretrained, split
        )
        latency = latency_model.epoch_latency(result.epoch_costs[0])
        rows[f"T{timesteps}"] = result.final_old_accuracy
        print(
            f"{timesteps:5d} {result.final_old_accuracy:8.3f} "
            f"{result.final_new_accuracy:8.3f} {latency:10.3g} "
            f"{result.latent_storage_bytes:9d}"
        )

    print("\nold-task accuracy by timestep:")
    print(ascii_bars({"old-acc": rows}))
    print(
        "\nPaper guidance (Fig. 8 Observation B): about 40% of the "
        "pre-training timesteps is the floor below which accuracy "
        "degrades without stronger compensation."
    )


if __name__ == "__main__":
    main()
