"""Characterise the synthetic SHD workload like the SHD paper does.

Prints per-class spike statistics (rates, occupancy, temporal centroid,
burstiness) at several timestep resolutions, plus the class-confusability
matrix — showing how coarser binning collapses temporal structure (the
information-theoretic face of the paper's timestep trade-off).

Run:  python examples/workload_analysis.py [--scale ci|bench]
"""

import argparse

import numpy as np

from repro.data import (
    SyntheticSHD,
    class_confusability,
    dataset_stats,
    make_class_incremental,
)
from repro.eval.scale import get_scale


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", choices=("ci", "bench"))
    args = parser.parse_args()

    preset = get_scale(args.scale)
    generator = SyntheticSHD(preset.shd, seed=preset.experiment.seed)
    split = make_class_incremental(
        generator,
        preset.experiment.samples_per_class,
        preset.experiment.test_samples_per_class,
        num_pretrain_classes=preset.experiment.num_pretrain_classes,
    )
    dataset = split.pretrain_train
    t_full = preset.experiment.pretrain.timesteps

    print(f"workload: {preset.shd.num_channels} channels, "
          f"{len(dataset)} recordings, {len(dataset.present_classes)} classes\n")

    for timesteps in (t_full, int(t_full * 0.4), max(t_full // 10, 2)):
        print(f"-- binned at T={timesteps} --")
        print(f"{'class':>6s} {'density':>8s} {'spk/sample':>10s} "
              f"{'occupancy':>9s} {'centroid':>8s} {'bursty':>7s}")
        for class_id, stats in sorted(dataset_stats(dataset, timesteps).items()):
            print(
                f"{class_id:6d} {stats.density:8.4f} {stats.spikes_per_sample:10.1f} "
                f"{stats.active_channel_fraction:9.2f} "
                f"{stats.temporal_centroid:8.2f} {stats.burstiness:7.2f}"
            )
        confusability = class_confusability(dataset, timesteps)
        off_diag = confusability[~np.eye(len(confusability), dtype=bool)]
        print(f"   mean off-diagonal confusability: {off_diag.mean():.3f}\n")

    print("Coarser binning raises confusability: temporal class structure\n"
          "is what aggressive timestep reduction destroys (paper Fig. 2b).")


if __name__ == "__main__":
    main()
