"""Runnable docs example: inspect and pin kernel backends."""

from repro.snn import backends

# One row per registered executor: name, parity class, availability and
# the probe's human-readable reason.
for row in backends.selection_report():
    marker = "*" if row["selected"] else " "
    print(f"{marker} {row['name']:6s} {row['parity']:9s} {row['reason']}")

# Explicit selection raises ConfigError (naming the missing dependency)
# when the backend is unavailable; numpy never is.
reference = backends.select_backend("numpy")
assert reference.availability()[0]

# `auto` walks the registry in priority order and always resolves.
assert backends.select_backend("auto").name in {"c", "torch", "numpy"}
