"""Runnable docs example: record, summarize and export a trace."""

import numpy as np

from repro import obs
from repro.snn import LIFParameters, RecurrentLIFLayer

# Instrumentation routes through the process-wide recorder.  With
# REPRO_TRACE unset every call is a no-op; installing a Recorder
# explicitly (tests, notebooks) captures without touching the env.
layer = RecurrentLIFLayer(
    16, 8, LIFParameters(beta=0.9), recurrent=True,
    rng=np.random.default_rng(0),
)
x = (np.random.default_rng(1).random((20, 4, 16)) < 0.2).astype(np.float32)

recorder = obs.Recorder()
with obs.use_recorder(recorder):
    with obs.span("example.sweep", category="docs", batches=1):
        layer.forward(x)
    obs.gauge("example.queue_depth", 2)

# The library's own spans (the fused kernel sweep) nest under ours.
report = obs.TraceReport.capture(recorder)
names = {span.name for span in report.spans}
assert {"example.sweep", "kernel.lif_forward"} <= names
kernel = next(s for s in report.spans if s.name == "kernel.lif_forward")
outer = next(s for s in report.spans if s.name == "example.sweep")
assert kernel.parent_id == outer.span_id

# Human summary: top span names + the metric table.
print(report.describe(top=5))

# Lossless JSONL round-trip, and Chrome trace_event for Perfetto.
path = obs.write_jsonl("/tmp/repro-docs-trace.jsonl", report.spans, report.metrics)
spans, metrics = obs.read_jsonl(path)
assert spans == report.spans and metrics == report.metrics
chrome = obs.to_chrome(report.spans)
assert any(event["ph"] == "X" for event in chrome["traceEvents"])
