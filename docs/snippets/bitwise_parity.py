"""Runnable docs example: backend parity against the numpy reference."""

import numpy as np

from repro.snn.backends import SweepSpec, select_backend
from repro.snn.backends.numpy_ref import lif_forward_sweep

rng = np.random.default_rng(0)
ff = rng.standard_normal((20, 4, 32)).astype(np.float32)
spec = SweepSpec(beta=0.9, vthr=0.6, hard=True)

reference_membrane, reference_spikes = lif_forward_sweep(ff, None, spec)
backend = select_backend("auto")
membrane, spikes = backend.lif_forward(ff, None, spec)

if backend.parity == "bitwise":
    # Bitwise backends must match the reference to the last bit.
    assert np.array_equal(membrane, reference_membrane)
    assert np.array_equal(spikes, reference_spikes)
else:
    np.testing.assert_allclose(membrane, reference_membrane, rtol=1e-6)
print(f"backend {backend.name!r} ({backend.parity}) matches the reference")
