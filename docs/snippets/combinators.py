"""Runnable docs example: composing continual-learning regimes lazily."""

import itertools

from repro.data.synthetic_shd import SyntheticSHD
from repro.eval.scale import get_scale
from repro.scenario import get, with_blur, with_label_noise, with_task_masks

preset = get_scale("ci")
experiment = preset.experiment.replace(
    samples_per_class=4, test_samples_per_class=2
)
generator = SyntheticSHD(preset.shd, seed=experiment.seed)

# A blurry, noisily-labelled class stream, evaluated task-incrementally.
# Combinators nest inside-out; each is a lazy wrapper over any base.
scenario = with_task_masks(with_label_noise(with_blur(get("sequential"))))
print(scenario.name)  # sequential+blur+label-noise+task-masks

# Nothing materialises until the step iterator advances — long streams
# never hold all their data at once.
for step in itertools.islice(scenario.steps(generator, experiment), 2):
    print(
        f"{step.name}: {len(step.split.new_train.labels)} training samples, "
        f"{len(step.task_classes)} task groups"
    )
