"""Concurrency-safe replay serving: pinned readers + async batching."""

import asyncio
import tempfile
from pathlib import Path

import numpy as np

from repro.errors import StoreError
from repro.replaystore import (
    FederatedReplayStore,
    ReplayService,
    ReplayStore,
    ReplayStream,
)

root = Path(tempfile.mkdtemp()) / "fleet"
fed = FederatedReplayStore.create(root, seed=0)
rng = np.random.default_rng(0)
for k in range(3):
    store = ReplayStore.create(
        root / f"agent-{k}",
        stored_frames=8,
        num_channels=16,
        generated_timesteps=8,
        shard_samples=4,
    )
    store.append(
        (rng.random((8, 12, 16)) < 0.1).astype(np.float32),
        rng.integers(0, 10, 12),
    )
    fed.adopt(f"agent-{k}")

# A reader pins its snapshot: filter/compact through another handle
# keeps the pinned shard files on disk, and the reader's next access
# reports the mutation as a clean StoreError — never a vanished-file
# OSError mid-gather.  (Members of a live federation are mutated via
# federation ops — adopt/rebalance — which keep its sample ledger in
# sync; this standalone store shows the raw two-handle protocol.)
solo = ReplayStore.create(
    root.parent / "solo",
    stored_frames=8,
    num_channels=16,
    generated_timesteps=8,
    shard_samples=4,
)
solo.append(
    (rng.random((8, 12, 16)) < 0.1).astype(np.float32),
    rng.integers(0, 10, 12),
)
reader = ReplayStream(solo)
before = reader.gather(np.arange(4))
assert before.shape[1] == 4
writer = ReplayStore.open(root.parent / "solo")
writer.filter(np.arange(0, writer.num_samples, 2))  # keep every other
try:
    reader.gather(np.arange(4))
    raise AssertionError("stale reader must fail loudly")
except StoreError:
    pass  # a stale handle fails loudly, not with corruption
reader.close()  # releases the pin; the writer's next commit sweeps


# The async facade: requests from many tenants coalesce into one
# deduplicated union gather per batch (each shard decodes once).
async def serve():
    async with ReplayService(root, max_batch_requests=4) as service:
        total = service.num_samples
        outputs = await service.gather_many(
            [
                ("tenant-a", np.arange(6) % total),
                ("tenant-b", np.arange(3, 9) % total),
            ]
        )
        return outputs, service.stats()


outputs, stats = asyncio.run(serve())
assert outputs[0].shape[1] == 6 and outputs[1].shape[1] == 6
assert stats.samples_decoded <= stats.samples_served
print(
    f"served {stats.samples_served} samples from "
    f"{stats.samples_decoded} decoded (coalescing "
    f"{stats.coalescing_ratio:.2f}x)"
)
