"""Micro-benchmarks of the library's hot paths (wall-clock).

These are conventional pytest-benchmark timings (many rounds) of the
kernels the figure experiments are built from: the SNN forward pass at
the paper's two timestep settings, the BPTT training step, the fused
sequence kernels against their per-step reference, and the Fig. 7
codec.  They exist so regressions in the substrate show up
independently of the (analytically-modelled) paper metrics.

Sizes honour ``REPRO_BENCH_SCALE`` (``ci`` shrinks timesteps/batch for
a smoke pass; ``bench`` is the default; ``paper`` matches the paper's
SHD setting).  ``benchmarks/check_regression.py`` runs this file at the
``ci`` scale and gates CI on the fused-vs-per-step speedup plus the
committed timing baseline.
"""

import os

import numpy as np
import pytest

from repro.autograd import cross_entropy
from repro.compression import BitpackCodec, TemporalSubsampleCodec
from repro.config import NetworkConfig
from repro.snn import LIFParameters, RecurrentLIFLayer, SpikingNetwork
from repro.training import Adam

#: (T_pretrain, T_ncl, batch) per scale; mirrors Fig. 8's 100-vs-40
#: timestep comparison at bench scale.
_SCALE_SIZES = {
    "ci": (40, 16, 4),
    "bench": (100, 40, 8),
    "paper": (100, 40, 32),
}


def _sizes():
    scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
    if scale not in _SCALE_SIZES:
        # Fail fast: a typo'd scale would silently benchmark the wrong
        # workload and poison baseline comparisons.
        raise ValueError(
            f"unknown REPRO_BENCH_SCALE {scale!r}; expected one of "
            f"{sorted(_SCALE_SIZES)}"
        )
    return _SCALE_SIZES[scale]


@pytest.fixture(scope="module")
def network():
    return SpikingNetwork(
        NetworkConfig(layer_sizes=(140, 64, 48, 32, 10), beta=0.95), seed=0
    )


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def _raster(rng, timesteps, batch=8, channels=140):
    return (rng.random((timesteps, batch, channels)) < 0.05).astype(np.float32)


def test_forward_t100(benchmark, network, rng):
    t_long, _, batch = _sizes()
    x = _raster(rng, t_long, batch)
    network.set_trainable(False)
    benchmark(lambda: network.forward(x))
    network.set_trainable(True)


def test_forward_t40(benchmark, network, rng):
    _, t_short, batch = _sizes()
    x = _raster(rng, t_short, batch)
    network.set_trainable(False)
    benchmark(lambda: network.forward(x))
    network.set_trainable(True)


def test_bptt_training_step_t40(benchmark, network, rng):
    _, t_short, batch = _sizes()
    x = _raster(rng, t_short, batch)
    labels = rng.integers(0, 10, batch)
    optimizer = Adam(network.trainable_parameters(), learning_rate=1e-4)

    def step():
        result = network.forward(x)
        loss = cross_entropy(result.logits, labels)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()

    benchmark(step)


# ----------------------------------------------------------------------
# Fused sequence kernel vs. the per-step reference (single LIF layer,
# forward + backward).  check_regression.py asserts the speedup ratio of
# this pair, so the two benches must stay workload-identical.
# ----------------------------------------------------------------------

def _lif_layer():
    return RecurrentLIFLayer(
        140, 64, LIFParameters(beta=0.95), recurrent=True,
        rng=np.random.default_rng(0),
    )


def _lif_forward_backward(layer, x, g_up):
    out = layer.forward(x)
    out.backward(g_up)
    for p in layer.parameters():
        p.zero_grad()


@pytest.fixture(scope="module")
def lif_workload(rng):
    t_long, _, batch = _sizes()
    x = _raster(rng, t_long, batch)
    g_up = rng.standard_normal((t_long, batch, 64)).astype(np.float32)
    return x, g_up


def test_fused_lif_forward_backward(benchmark, lif_workload):
    layer = _lif_layer()
    layer.use_fused = True
    x, g_up = lif_workload
    benchmark(_lif_forward_backward, layer, x, g_up)
    assert layer.last_forward_path == "fused"


def test_per_step_lif_forward_backward(benchmark, lif_workload):
    layer = _lif_layer()
    layer.use_fused = False
    x, g_up = lif_workload
    benchmark(_lif_forward_backward, layer, x, g_up)
    assert layer.last_forward_path == "steps"


# ----------------------------------------------------------------------
# Per-backend rows: the same fused workloads pinned to each registered
# kernel backend (REPRO_BACKEND).  Unavailable backends skip, so the
# rows degrade gracefully on runners without a C compiler or torch;
# check_regression.py asserts the C backend beats numpy on at least one
# kernel whenever its rows are present.
# ----------------------------------------------------------------------

_BACKEND_NAMES = ("numpy", "c", "torch")


def _require_backend(name, monkeypatch):
    from repro.snn import backends

    executor = backends.get_backend(name)
    ok, reason = executor.availability()
    if not ok:
        pytest.skip(f"backend {name!r} unavailable: {reason}")
    monkeypatch.setenv("REPRO_BACKEND", name)


@pytest.mark.parametrize("backend_name", _BACKEND_NAMES)
def test_backend_lif_forward_backward(
    benchmark, lif_workload, backend_name, monkeypatch
):
    _require_backend(backend_name, monkeypatch)
    layer = _lif_layer()
    layer.use_fused = True
    x, g_up = lif_workload
    benchmark(_lif_forward_backward, layer, x, g_up)
    assert layer.last_forward_path == "fused"


@pytest.mark.parametrize("backend_name", _BACKEND_NAMES)
def test_backend_readout_forward_backward(benchmark, rng, backend_name, monkeypatch):
    from repro.autograd import Tensor
    from repro.snn.kernels import leaky_readout_sequence

    _require_backend(backend_name, monkeypatch)
    t_long, _, batch = _sizes()
    x = (rng.random((t_long, batch, 64)) < 0.1).astype(np.float32)
    w = (np.random.default_rng(1).standard_normal((64, 10)) * 0.3).astype(np.float32)
    g_up = np.ones((t_long, batch, 10), dtype=np.float32)

    def run():
        w_out = Tensor(w, requires_grad=True)
        trajectory = leaky_readout_sequence(Tensor(x), w_out, beta=0.9)
        trajectory.backward(g_up)

    benchmark(run)


# ----------------------------------------------------------------------
# Tracing overhead: exactly the obs calls one fused LIF forward+backward
# issues (2x counter + 2x span) with tracing disabled, i.e. the no-op
# cost the instrumentation adds to every kernel sweep when REPRO_TRACE
# is off.  check_regression.py gates this row at < 2% of the fused
# kernel's own mean so the disabled path stays effectively free.
# ----------------------------------------------------------------------

def test_trace_disabled_overhead(benchmark, monkeypatch):
    from repro import obs

    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert not obs.enabled()

    def disabled_calls():
        obs.count("kernel.calls", backend="numpy", kernel="lif_forward")
        with obs.span("kernel.lif_forward", category="kernel", backend="numpy"):
            pass
        obs.count("kernel.calls", backend="numpy", kernel="lif_backward")
        with obs.span("kernel.lif_backward", category="kernel", backend="numpy"):
            pass

    benchmark(disabled_calls)


def test_subsample_codec_roundtrip(benchmark, rng):
    raster = (rng.random((100, 64, 64)) < 0.1).astype(np.float32)
    codec = TemporalSubsampleCodec(2)
    benchmark(lambda: codec.decompress(codec.compress(raster), 100))


def test_bitpack_roundtrip(benchmark, rng):
    raster = (rng.random((100, 64, 64)) < 0.1).astype(np.float32)
    codec = BitpackCodec()

    def roundtrip():
        packed, shape = codec.compress(raster)
        return codec.decompress(packed, shape)

    benchmark(roundtrip)


def test_store_shard_roundtrip(benchmark, rng):
    """Replay-store shard encode+decode (the store-backed replay path's
    per-cache-miss cost); in-memory so the timing is filesystem-free."""
    from repro.replaystore import decode_shard, encode_shard

    t_long, _, batch = _sizes()
    raster = (rng.random((t_long, 8 * batch, 64)) < 0.1).astype(np.float32)
    labels = rng.integers(0, 10, 8 * batch)

    benchmark(lambda: decode_shard(encode_shard(raster, labels)))


def test_checkpoint_roundtrip(benchmark, network, tmp_path):
    """Scenario checkpoint commit + verified restore (the crash-safe
    resume path's per-step-boundary cost: network archive write, sha256,
    atomic manifest rename, then a full integrity-checked load)."""
    from repro.core.strategies import EpochCost, NCLResult
    from repro.scenario.checkpoint import ScenarioCheckpoint, run_fingerprint
    from repro.training.metrics import EpochRecord, TrainingHistory

    results = [
        NCLResult(
            method="replay4ncl",
            insertion_layer=2,
            timesteps=16,
            history=TrainingHistory(
                records=[EpochRecord(epoch=e, loss=1.0 / (e + 1)) for e in range(4)]
            ),
            final_old_accuracy=0.5,
            final_new_accuracy=0.5,
            final_overall_accuracy=0.5,
            latent_storage_bytes=1024,
            latent_stored_frames=16,
            epoch_costs=[],
            prepare_cost=EpochCost(),
            network=network,
        )
        for _ in range(2)
    ]
    checkpoint = ScenarioCheckpoint(tmp_path / "ckpt")
    fingerprint = run_fingerprint(
        scenario="bench", method="replay4ncl", experiment="bench", replay=None
    )

    def roundtrip():
        checkpoint.save(
            fingerprint=fingerprint,
            scenario="bench",
            method="replay4ncl",
            steps_completed=len(results),
            pretrain_accuracy=0.9,
            step_names=[f"step-{k}" for k in range(len(results))],
            rows=[[0.5] * (k + 2) for k in range(len(results))],
            results=results,
            network=network,
        )
        return checkpoint.load(fingerprint=fingerprint)

    state = benchmark(roundtrip)
    assert state.steps_completed == len(results)


def test_federation_roundtrip(benchmark, rng, tmp_path):
    """Federated replay epoch: shuffled minibatch gathers routed across
    member stores with cold per-round caches — the long-task-sequence
    replay path's steady-state cost (member routing + shard decode)."""
    from repro.replaystore import FederatedReplayStore, ReplayStore

    t_long, _, batch = _sizes()
    samples_per_member = 4 * batch
    fed = FederatedReplayStore.create(tmp_path / "fed", seed=0)
    for k in range(3):
        store = ReplayStore.create(
            tmp_path / "fed" / f"task-{k}",
            stored_frames=t_long,
            num_channels=64,
            generated_timesteps=t_long,
            shard_samples=batch,
        )
        store.append(
            (rng.random((t_long, samples_per_member, 64)) < 0.1).astype(
                np.float32
            ),
            rng.integers(0, 10, samples_per_member),
        )
        fed.adopt(f"task-{k}")
    total = fed.num_samples
    batches = [rng.integers(0, total, batch) for _ in range(8)]

    def epoch():
        view = fed.stream(cache_shards=2)
        for indices in batches:
            view.gather(indices)

    benchmark(epoch)
