"""Micro-benchmarks of the library's hot paths (wall-clock).

These are conventional pytest-benchmark timings (many rounds) of the
kernels the figure experiments are built from: the SNN forward pass at
the paper's two timestep settings, the BPTT training step, and the
Fig. 7 codec.  They exist so regressions in the substrate show up
independently of the (analytically-modelled) paper metrics.
"""

import numpy as np
import pytest

from repro.autograd import cross_entropy
from repro.compression import BitpackCodec, TemporalSubsampleCodec
from repro.config import NetworkConfig
from repro.snn import SpikingNetwork
from repro.training import Adam


@pytest.fixture(scope="module")
def network():
    return SpikingNetwork(
        NetworkConfig(layer_sizes=(140, 64, 48, 32, 10), beta=0.95), seed=0
    )


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def _raster(rng, timesteps, batch=8, channels=140):
    return (rng.random((timesteps, batch, channels)) < 0.05).astype(np.float32)


def test_forward_t100(benchmark, network, rng):
    x = _raster(rng, 100)
    network.set_trainable(False)
    benchmark(lambda: network.forward(x))
    network.set_trainable(True)


def test_forward_t40(benchmark, network, rng):
    x = _raster(rng, 40)
    network.set_trainable(False)
    benchmark(lambda: network.forward(x))
    network.set_trainable(True)


def test_bptt_training_step_t40(benchmark, network, rng):
    x = _raster(rng, 40)
    labels = rng.integers(0, 10, 8)
    optimizer = Adam(network.trainable_parameters(), learning_rate=1e-4)

    def step():
        result = network.forward(x)
        loss = cross_entropy(result.logits, labels)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()

    benchmark(step)


def test_subsample_codec_roundtrip(benchmark, rng):
    raster = (rng.random((100, 64, 64)) < 0.1).astype(np.float32)
    codec = TemporalSubsampleCodec(2)
    benchmark(lambda: codec.decompress(codec.compress(raster), 100))


def test_bitpack_roundtrip(benchmark, rng):
    raster = (rng.random((100, 64, 64)) < 0.1).astype(np.float32)
    codec = BitpackCodec()

    def roundtrip():
        packed, shape = codec.compress(raster)
        return codec.decompress(packed, shape)

    benchmark(roundtrip)
