"""Ablation: the NCL learning-rate divisor (Alg. 1 line 6: eta_pre/100).

Sweeps eta_cl = eta_pre / {1, 10, 100, 1000} for Replay4NCL.  The paper
argues the /100 setting trades learning speed for stability on fewer
spikes; too high a rate disturbs old knowledge, too low never learns the
new task.
"""

from repro.core import Replay4NCL, run_method
from repro.eval import experiments
from repro.eval.results import ExperimentResult, Series


def test_learning_rate_divisor_sweep(benchmark, bench_scale, record_result):
    ctx = experiments.context(bench_scale)
    exp = ctx.preset.experiment
    divisors = (1.0, 10.0, 100.0, 1000.0)

    def run_sweep():
        rows = {}
        for divisor in divisors:
            config = exp.replace(
                ncl=exp.ncl.replace(learning_rate_divisor=divisor)
            )
            rows[divisor] = run_method(Replay4NCL(config), ctx.pretrained, ctx.split)
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    result = ExperimentResult(
        experiment_id="ablation_learning_rate",
        title="Ablation: NCL learning-rate divisor",
        scale=ctx.preset.name,
    )
    result.add_series(Series(
        name="old-acc", x=divisors,
        y=tuple(rows[d].final_old_accuracy for d in divisors),
        x_label="eta divisor", y_label="top1",
    ))
    result.add_series(Series(
        name="new-acc", x=divisors,
        y=tuple(rows[d].final_new_accuracy for d in divisors),
        x_label="eta divisor", y_label="top1",
    ))
    record_result(result)

    # The margins are paper-faithful at bench/paper scale; the ci smoke
    # split's accuracy quantum is one test sample (0.0625 old / 0.25
    # new), so widen by that quantum there — the smoke job gates on
    # regressions, not on sampling granularity.
    slack = 0.25 if bench_scale == "ci" else 0.0
    # The aggressive end (divisor 1) must disturb old knowledge at least
    # as much as the paper's conservative /100 setting.
    assert rows[1.0].final_old_accuracy <= (
        rows[100.0].final_old_accuracy + 0.05 + slack
    )
    # The conservative extreme must fail to learn the new task as fast.
    assert rows[1000.0].final_new_accuracy <= (
        rows[1.0].final_new_accuracy + 1e-9 + slack
    )
