"""Paper Fig. 13: long-training convergence (3x the usual epochs).

Replay4NCL's much lower NCL learning rate gives more careful weight
updates: a smoother new-task accuracy curve with equal-or-better final
accuracy (marker 7).
"""

from repro.eval import experiments


def test_fig13_long_training(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(
        lambda: experiments.run("fig13", scale=bench_scale), rounds=1, iterations=1
    )
    record_result(result)

    # Marker 7: Replay4NCL converges (final accuracy comparable or
    # better) and its curve is at least as smooth as SpikingLR's.  The
    # margins are paper-faithful at bench/paper scale; the ci smoke
    # split holds only a handful of test samples, so one flipped
    # prediction moves accuracy by 0.25 — widen by that quantum there
    # so the smoke job gates on regressions, not sampling granularity.
    slack = 0.3 if bench_scale == "ci" else 0.0
    assert result.scalars["replay4ncl_final_new_acc"] >= (
        result.scalars["spikinglr_final_new_acc"] - 0.1 - slack
    )
    assert result.scalars["replay4ncl_curve_roughness"] <= (
        result.scalars["spikinglr_curve_roughness"] + 0.05 + slack
    )
