"""Replay-store throughput: shard encode, decode, and streamed gather.

Wall-clock benchmarks of the storage engine's hot paths, sized by
``REPRO_BENCH_SCALE`` like the other micro benches:

- ``encode``/``decode`` — the per-shard codec round-trip (the cost a
  store-backed epoch pays per cache miss);
- ``stream_gather`` — shuffled minibatch gathers through the LRU'd
  :class:`ReplayStream`, i.e. the actual replay path;
- ``dense_gather`` — the same access pattern on the resident array, the
  price-of-admission comparison for going disk-backed.
"""

import os

import numpy as np
import pytest

from repro.replaystore import (
    ReplayStore,
    ReplayStream,
    decode_shard,
    encode_shard,
)

#: (stored_frames, samples, channels, shard_samples) per scale.
_SCALE_SIZES = {
    "ci": (16, 64, 48, 16),
    "bench": (40, 256, 128, 32),
    "paper": (40, 1024, 256, 64),
}


def _sizes():
    scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
    if scale not in _SCALE_SIZES:
        raise ValueError(
            f"unknown REPRO_BENCH_SCALE {scale!r}; expected one of "
            f"{sorted(_SCALE_SIZES)}"
        )
    return _SCALE_SIZES[scale]


@pytest.fixture(scope="module")
def workload():
    frames, samples, channels, shard_samples = _sizes()
    rng = np.random.default_rng(0)
    raster = (rng.random((frames, samples, channels)) < 0.1).astype(np.float32)
    labels = rng.integers(0, 10, samples)
    return raster, labels, shard_samples


@pytest.fixture(scope="module")
def store(workload, tmp_path_factory):
    raster, labels, shard_samples = workload
    store = ReplayStore.create(
        tmp_path_factory.mktemp("bench-store") / "store",
        stored_frames=raster.shape[0],
        num_channels=raster.shape[2],
        generated_timesteps=raster.shape[0],
        shard_samples=shard_samples,
    )
    store.append(raster, labels)
    return store


def test_shard_encode(benchmark, workload):
    raster, labels, shard_samples = workload
    chunk = raster[:, :shard_samples, :]
    benchmark(encode_shard, chunk, labels[:shard_samples])


def test_shard_decode(benchmark, workload):
    raster, labels, shard_samples = workload
    blob = encode_shard(raster[:, :shard_samples, :], labels[:shard_samples])
    benchmark(decode_shard, blob)


def test_stream_gather(benchmark, store, workload):
    raster, _, _ = workload
    stream = ReplayStream(store, cache_shards=2)
    rng = np.random.default_rng(1)
    batches = [
        rng.choice(raster.shape[1], size=16, replace=False) for _ in range(8)
    ]

    def epoch():
        for batch in batches:
            stream.gather(batch)

    benchmark(epoch)


def test_dense_gather(benchmark, workload):
    raster, _, _ = workload
    rng = np.random.default_rng(1)
    batches = [
        rng.choice(raster.shape[1], size=16, replace=False) for _ in range(8)
    ]

    def epoch():
        for batch in batches:
            raster[:, batch, :]

    benchmark(epoch)
