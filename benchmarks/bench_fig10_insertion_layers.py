"""Paper Fig. 10: SpikingLR vs Replay4NCL across LR insertion layers.

(a) Top-1 accuracy on old and new tasks (comparable, marker 1);
(b) processing time normalized to SOTA at layer 0 (up to 2.34x speed-up,
marker 2); (c) energy normalized likewise (up to 56.7% saving, marker 3).
"""

from repro.eval import experiments


def test_fig10_insertion_layer_grid(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(
        lambda: experiments.run("fig10", scale=bench_scale), rounds=1, iterations=1
    )
    record_result(result)

    sota_old = result.get_series("spikinglr-old").y
    ours_old = result.get_series("replay4ncl-old").y
    ours_new = result.get_series("replay4ncl-new").y
    sota_latency = result.get_series("spikinglr-latency").y
    ours_latency = result.get_series("replay4ncl-latency").y
    sota_energy = result.get_series("spikinglr-energy").y
    ours_energy = result.get_series("replay4ncl-energy").y

    # Marker 1: comparable accuracy on old tasks at every layer, and the
    # new task is learned.
    for sota, ours in zip(sota_old, ours_old):
        assert ours >= sota - 0.15
    assert min(ours_new) >= 0.5

    # Marker 2: Replay4NCL is faster at every insertion layer.
    for sota, ours in zip(sota_latency, ours_latency):
        assert ours < sota
    assert result.scalars["max_latency_speedup"] > 1.8

    # Marker 3: energy savings at every layer, peaking near the paper's.
    for sota, ours in zip(sota_energy, ours_energy):
        assert ours < sota
    assert result.scalars["max_energy_saving"] > 0.35
