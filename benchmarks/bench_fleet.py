"""Fleet simulation: N agents interleaving reads, writes, rebalances.

The production framing of the replay-store service: one byte-budgeted
federation shared by a fleet of on-device learners.  ``test_fleet_serving``
stands the whole concurrency stack up at once —

- *reader agents* issue batched replay gathers through one
  :class:`~repro.replaystore.service.ReplayService` (coalesced union
  decodes, executor-threaded gather, mutation-triggered refresh);
- a *writer agent* adopts fresh member stores and runs budget
  rebalances under the federation lock while those reads are in
  flight — readers ride their pinned snapshots and the service reopens
  transparently when its view goes stale.

The benchmark row's mean (whole-fleet wall time) is gated against
``baseline_ci.json`` like every other row; the serving quality numbers —
per-request p99 latency and sustained request throughput — ride in
``extra_info`` and are gated by ``check_regression.py`` explicitly.

Latency is measured with ``time.perf_counter`` (benchmarks are outside
the ``repro.lint`` RPL002 wall-clock scope, which covers ``src/repro``).
"""

import asyncio
import itertools
import os
import time

import numpy as np
import pytest

from repro import obs
from repro.errors import StoreError
from repro.replaystore import FederatedReplayStore, ReplayService, ReplayStore

#: (readers, reads per reader, writer adopts, seed members,
#:  samples per member, frames, channels, shard_samples, request batch)
_SCALE_SIZES = {
    "ci": (4, 6, 2, 3, 48, 16, 32, 8, 12),
    "bench": (8, 12, 3, 4, 192, 40, 96, 16, 24),
    "paper": (16, 24, 4, 6, 768, 40, 192, 32, 48),
}


def _sizes():
    scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
    if scale not in _SCALE_SIZES:
        raise ValueError(
            f"unknown REPRO_BENCH_SCALE {scale!r}; expected one of "
            f"{sorted(_SCALE_SIZES)}"
        )
    return _SCALE_SIZES[scale]


def _make_member(root, name, *, samples, frames, channels, shard_samples, seed):
    rng = np.random.default_rng(seed)
    store = ReplayStore.create(
        root / name,
        stored_frames=frames,
        num_channels=channels,
        generated_timesteps=frames,
        shard_samples=shard_samples,
    )
    store.append(
        (rng.random((frames, samples, channels)) < 0.1).astype(np.float32),
        rng.integers(0, 10, samples),
    )
    return store


def _build_federation(root, *, members, samples, frames, channels, shard_samples):
    fed = FederatedReplayStore.create(root, seed=0)
    for k in range(members):
        name = f"agent-{k:03d}"
        _make_member(
            root,
            name,
            samples=samples,
            frames=frames,
            channels=channels,
            shard_samples=shard_samples,
            seed=k,
        )
        fed.adopt(name)
    return fed


def _run_fleet(root, telemetry):
    """One full fleet round; appends serving numbers to ``telemetry``."""
    readers, reads, adopts, members, samples, frames, channels, shard, batch = (
        _sizes()
    )
    _build_federation(
        root,
        members=members,
        samples=samples,
        frames=frames,
        channels=channels,
        shard_samples=shard,
    )
    latencies: list[float] = []

    def adopt_and_rebalance(step):
        fed = FederatedReplayStore.open(root)
        name = f"late-{step:03d}"
        _make_member(
            root,
            name,
            samples=samples,
            frames=frames,
            channels=channels,
            shard_samples=shard,
            seed=1000 + step,
        )
        fed.adopt(name)
        fed.configure(budget_bytes=members * samples * fed.sample_bytes)
        fed.rebalance()

    async def reader(service, agent):
        rng = np.random.default_rng(100 + agent)
        for _round in range(reads):
            total = service.num_samples
            indices = np.sort(rng.integers(0, total, batch))
            started = time.perf_counter()
            try:
                await service.gather(indices, tenant=f"agent-{agent}")
            except StoreError:
                # The snapshot shrank under a rebalance between sampling
                # and serving; the next round samples the fresh bounds.
                continue
            latencies.append(time.perf_counter() - started)

    async def writer(service):
        for step in range(adopts):
            await asyncio.to_thread(adopt_and_rebalance, step)
            await asyncio.sleep(0)

    async def fleet():
        async with ReplayService(
            root, max_batch_requests=readers, cache_shards=4
        ) as service:
            await asyncio.gather(
                *(reader(service, agent) for agent in range(readers)),
                writer(service),
            )
            return service.stats()

    started = time.perf_counter()
    stats = asyncio.run(fleet())
    wall = time.perf_counter() - started
    telemetry.append((latencies, stats, wall))
    # No-op unless REPRO_TRACE names a file (check_regression strips it
    # from the gated timing run; the CI trace step sets it explicitly).
    obs.maybe_export()


@pytest.fixture()
def fleet_roots(tmp_path):
    counter = itertools.count()
    return lambda: tmp_path / f"fleet-{next(counter):04d}"


def test_fleet_serving(benchmark, fleet_roots):
    """Whole-fleet wall time, plus p99/throughput rows for the gate."""
    telemetry = []
    benchmark(lambda: _run_fleet(fleet_roots(), telemetry))
    latencies, stats, wall = telemetry[-1]
    assert latencies, "no successful replay reads in the fleet round"
    assert stats.samples_decoded <= stats.samples_served
    benchmark.extra_info["p99_read_seconds"] = float(
        np.quantile(np.asarray(latencies), 0.99)
    )
    benchmark.extra_info["throughput_rps"] = len(latencies) / wall
    benchmark.extra_info["requests"] = stats.requests
    benchmark.extra_info["batches"] = stats.batches
    benchmark.extra_info["refreshes"] = stats.refreshes
    benchmark.extra_info["coalescing_ratio"] = round(
        stats.coalescing_ratio, 4
    )


def test_fleet_parity_guard(fleet_roots):
    """Not a timing: concurrent serving must return exact store bytes.

    Every successful service read during a mutating fleet round must be
    bitwise identical to a direct gather against the snapshot the
    service served it from — here checked on a quiescent federation
    (the mutating case is covered by tests/replaystore/test_service.py).
    """
    _readers, _reads, _adopts, members, samples, frames, channels, shard, batch = (
        _sizes()
    )
    root = fleet_roots()
    fed = _build_federation(
        root,
        members=members,
        samples=samples,
        frames=frames,
        channels=channels,
        shard_samples=shard,
    )
    dense = fed.stream().materialize()
    rng = np.random.default_rng(7)

    async def serve():
        async with ReplayService(root, max_batch_requests=4) as service:
            requests = [
                (f"agent-{i}", np.sort(rng.integers(0, dense.shape[1], batch)))
                for i in range(6)
            ]
            outputs = await service.gather_many(requests)
            return requests, outputs

    requests, outputs = asyncio.run(serve())
    for (_tenant, indices), out in zip(requests, outputs):
        np.testing.assert_array_equal(out, dense[:, indices, :])
    obs.maybe_export()  # the CI fleet-trace artifact, when REPRO_TRACE is set
