"""Ablation: replay-subset size (the TS_replay ⊆ TS_pre budget).

Sweeps the fraction of the pre-training set stored as latent replay
data.  Old-task retention should grow with the budget, while the latent
memory bill grows linearly — the trade embedded deployments must pick.
"""

from repro.core import Replay4NCL, run_method
from repro.eval import experiments
from repro.eval.results import ExperimentResult, Series


def test_replay_budget_sweep(benchmark, bench_scale, record_result):
    ctx = experiments.context(bench_scale)
    exp = ctx.preset.experiment
    fractions = (0.1, 0.25, 0.5, 1.0)

    def run_sweep():
        rows = {}
        for fraction in fractions:
            config = exp.replace(ncl=exp.ncl.replace(replay_fraction=fraction))
            rows[fraction] = run_method(Replay4NCL(config), ctx.pretrained, ctx.split)
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    result = ExperimentResult(
        experiment_id="ablation_replay_budget",
        title="Ablation: replay subset fraction",
        scale=ctx.preset.name,
    )
    result.add_series(Series(
        name="old-acc", x=fractions,
        y=tuple(rows[f].final_old_accuracy for f in fractions),
        x_label="replay fraction", y_label="top1",
    ))
    result.add_series(Series(
        name="latent-bytes", x=fractions,
        y=tuple(float(rows[f].latent_storage_bytes) for f in fractions),
        x_label="replay fraction", y_label="bytes",
    ))
    record_result(result)

    # Memory grows monotonically with the budget.
    byte_counts = [rows[f].latent_storage_bytes for f in fractions]
    assert all(a <= b for a, b in zip(byte_counts, byte_counts[1:]))
    # A bigger budget never hurts retention by much.
    assert rows[1.0].final_old_accuracy >= rows[0.1].final_old_accuracy - 0.1
