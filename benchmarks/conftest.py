"""Benchmark-harness plumbing.

Every bench reproduces one paper figure/table via
:func:`repro.eval.experiments.run`.  Results are written to
``benchmarks/results/<id>.{json,csv,txt}`` and echoed into the terminal
summary (stdout inside tests is captured by pytest; the summary hook is
not).

Scale is ``bench`` by default; set ``REPRO_BENCH_SCALE=ci`` for a quick
smoke pass or ``=paper`` for the full configuration (CPU-hours).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

_RESULTS_DIR = Path(__file__).parent / "results"
_SUMMARIES: list[str] = []


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "bench")


@pytest.fixture(scope="session")
def record_result():
    """Persist an ExperimentResult and queue its text for the summary."""

    def _record(result):
        result.save(_RESULTS_DIR)
        text = result.format_text()
        (_RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
        _SUMMARIES.append(text)
        return result

    return _record


def pytest_terminal_summary(terminalreporter):
    if not _SUMMARIES:
        return
    terminalreporter.write_sep("=", "paper figure reproductions")
    for text in _SUMMARIES:
        terminalreporter.write_line(text)
        terminalreporter.write_line("")
