"""Federated replay with async shard prefetch: on-vs-off step time.

Two layers of measurement:

- ``test_sequential_step_prefetch_{on,off}`` — the real thing: a full
  store-backed ``run_sequential`` (2 continual steps, ci experiment
  scale, replay persisted into a per-step federation) timed end to end
  with the background shard-decode worker enabled vs disabled.
- ``test_replay_epoch_prefetch_{on,off}`` — the storage layer in
  isolation: a shuffled ``DataLoader`` epoch over a
  ``ConcatReplaySource`` whose replay half streams from a federation
  member, with a fixed matmul standing in for the SNN step, sized by
  ``REPRO_BENCH_SCALE`` like the other storage benches.

Reading the pair honestly: prefetch moves shard decode onto a second
core.  On a multi-core host the decode hides behind training compute
and ``on`` should not exceed ``off`` by more than queue-handoff noise;
on a single-core runner there is no second core to hide work on, so
``on`` pays a few percent of switching overhead instead — which is
exactly what ``REPRO_PREFETCH=0`` is for.  Correctness never depends on
the mode (``test_prefetch_parity_guard`` and the bitwise tests in
``tests/core/test_sequential_store.py``).

``test_federated_rebalance`` times the between-steps budget-eviction
pass (policy sweep + cross-member shard rewrite).
"""

import itertools
import os
import shutil

import numpy as np
import pytest

from repro import obs
from repro.data.loaders import DataLoader
from repro.replaystore import (
    ConcatReplaySource,
    FederatedReplayStore,
    PrefetchingStream,
    ReplayStore,
    ReplayStream,
)

#: (stored_frames, samples per member, channels, shard_samples, compute_dim)
_SCALE_SIZES = {
    "ci": (16, 48, 48, 8, 64),
    "bench": (40, 192, 128, 16, 192),
    "paper": (40, 768, 256, 32, 384),
}


def _sizes():
    scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
    if scale not in _SCALE_SIZES:
        raise ValueError(
            f"unknown REPRO_BENCH_SCALE {scale!r}; expected one of "
            f"{sorted(_SCALE_SIZES)}"
        )
    return _SCALE_SIZES[scale]


# ----------------------------------------------------------------------
# The real thing: store-backed sequential NCL, prefetch on vs off
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sequential_scenario():
    """Pre-trained network + 2-step splits at the ci experiment scale.

    The experiment scale stays ``ci`` regardless of REPRO_BENCH_SCALE:
    the pair isolates the storage path's contribution to step time, and
    larger simulator workloads only drown it in SNN compute.
    """
    from repro.core.pipeline import pretrain
    from repro.core.sequential import make_sequential_splits
    from repro.data.synthetic_shd import SyntheticSHD
    from repro.data.tasks import make_class_incremental
    from repro.eval.scale import get_scale

    preset = get_scale("ci")
    generator = SyntheticSHD(preset.shd, seed=preset.experiment.seed)
    exp = preset.experiment.replace(num_pretrain_classes=3)
    base_split = make_class_incremental(
        generator,
        exp.samples_per_class,
        exp.test_samples_per_class,
        num_pretrain_classes=3,
    )
    pretrained = pretrain(exp, base_split)
    splits = make_sequential_splits(
        generator,
        exp.samples_per_class,
        exp.test_samples_per_class,
        base_classes=3,
        steps=2,
    )
    return exp, pretrained.network, splits


def _bench_sequential(benchmark, sequential_scenario, tmp_path, prefetch):
    from repro.core import Replay4NCL, ReplaySpec
    from repro.core.sequential import run_sequential

    exp, network, splits = sequential_scenario
    counter = itertools.count()

    def step():
        root = tmp_path / f"fed-{next(counter)}"
        return run_sequential(
            lambda k: Replay4NCL(exp),
            network,
            splits,
            replay=ReplaySpec(store_dir=root, shard_samples=8, prefetch=prefetch),
        )

    result = benchmark(step)
    assert result.store_root is not None


def test_sequential_step_prefetch_on(benchmark, sequential_scenario, tmp_path):
    _bench_sequential(benchmark, sequential_scenario, tmp_path, prefetch=True)


def test_sequential_step_prefetch_off(benchmark, sequential_scenario, tmp_path):
    _bench_sequential(benchmark, sequential_scenario, tmp_path, prefetch=False)


# ----------------------------------------------------------------------
# Storage layer in isolation: federated replay epoch
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def federation(tmp_path_factory):
    frames, samples, channels, shard_samples, _ = _sizes()
    rng = np.random.default_rng(0)
    root = tmp_path_factory.mktemp("bench-federation") / "fed"
    fed = FederatedReplayStore.create(root, seed=0)
    for k in range(3):
        store = ReplayStore.create(
            root / f"task-{k}",
            stored_frames=frames,
            num_channels=channels,
            generated_timesteps=frames,
            shard_samples=shard_samples,
        )
        store.append(
            (rng.random((frames, samples, channels)) < 0.1).astype(np.float32),
            rng.integers(0, 10, samples),
        )
        fed.adopt(f"task-{k}")
    return fed


@pytest.fixture(scope="module")
def workload(federation):
    """Dense new-task half, labels, and the compute stand-in."""
    frames, samples, channels, shard_samples, compute_dim = _sizes()
    rng = np.random.default_rng(1)
    dense = (rng.random((frames, samples // 2, channels)) < 0.1).astype(
        np.float32
    )
    member = federation.member("task-0")
    total = dense.shape[1] + member.num_samples
    labels = np.arange(total) % 10
    weights = rng.standard_normal((channels, compute_dim)).astype(np.float32)

    def compute(batch):
        return float(np.tanh(batch @ weights).sum())

    return dense, member, labels, compute


def _epoch(source, labels, compute, *, batch_size=16, seed=2):
    loader = DataLoader(
        source,
        labels,
        batch_size=batch_size,
        shuffle=True,
        rng=np.random.default_rng(seed),
    )
    total = 0.0
    for inputs, _ in loader:
        total += compute(inputs)
    return total


def _bench_epoch(benchmark, workload, prefetch):
    # One stream serves every round (matching NCLMethod.run): the
    # per-epoch timing must not re-pay worker start-up each round.
    # Recording runs under an explicit obs recorder so the result rows
    # carry the queue-depth / cache-hit numbers the prefetch tuning
    # item needs (aggregated across every timed round).
    dense, member, labels, compute = workload
    recorder = obs.Recorder()
    with obs.use_recorder(recorder):
        replay = PrefetchingStream(
            ReplayStream(member, cache_shards=2), enabled=prefetch
        )
        try:
            source = ConcatReplaySource(dense, replay)
            benchmark(lambda: _epoch(source, labels, compute))
        finally:
            replay.close()
    hits = misses = 0.0
    for metric in recorder.metrics():
        if metric.name == "prefetch.queue_depth":
            benchmark.extra_info["queue_depth_max"] = metric.high
            benchmark.extra_info["queue_depth_mean"] = round(metric.mean, 3)
        elif metric.name == "prefetch.wait_seconds":
            benchmark.extra_info["prefetch_wait_mean_s"] = round(metric.mean, 6)
        elif metric.name == "prefetch.queued":
            benchmark.extra_info["prefetch_queued"] = metric.total
        elif metric.name == "prefetch.dropped":
            benchmark.extra_info["prefetch_dropped"] = metric.total
        elif metric.name == "store.cache_hits":
            hits = metric.total
        elif metric.name == "store.cache_misses":
            misses = metric.total
    benchmark.extra_info["cache_hits"] = hits
    benchmark.extra_info["cache_misses"] = misses
    if hits + misses:
        benchmark.extra_info["cache_hit_rate"] = round(hits / (hits + misses), 4)


def test_replay_epoch_prefetch_on(benchmark, workload):
    _bench_epoch(benchmark, workload, prefetch=True)


def test_replay_epoch_prefetch_off(benchmark, workload):
    _bench_epoch(benchmark, workload, prefetch=False)


def test_prefetch_parity_guard(workload):
    """Not a timing: the two modes must reduce to the same numbers."""
    dense, member, labels, compute = workload
    totals = {}
    for mode in (True, False):
        replay = PrefetchingStream(
            ReplayStream(member, cache_shards=2), enabled=mode
        )
        try:
            totals[mode] = _epoch(
                ConcatReplaySource(dense, replay), labels, compute
            )
        finally:
            replay.close()
    assert totals[True] == totals[False]


# ----------------------------------------------------------------------
# Between-steps maintenance: budgeted cross-member eviction
# ----------------------------------------------------------------------
def test_federated_rebalance(benchmark, federation, tmp_path):
    """Budget-eviction pass between steps: policy sweep + member rewrite."""
    source = federation

    def rebalance():
        # Fresh copy per round: rebalance mutates the member stores.
        root = tmp_path / "round"
        if root.exists():
            shutil.rmtree(root)
        shutil.copytree(source.root, root)
        fed = FederatedReplayStore.open(root)
        fed.configure(budget_bytes=(fed.num_samples // 2) * fed.sample_bytes)
        return fed.rebalance()

    result = benchmark(rebalance)
    assert result > 0
