"""Paper Fig. 2: the motivating case study.

(a) SpikingLR's latency/energy overheads vs the no-NCL baseline across
LR insertion layers; (b) accuracy degradation under aggressive timestep
reduction (the paper's 100 -> 20).
"""

from repro.eval import experiments


def test_fig2_spikinglr_overheads_and_reduction(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(
        lambda: experiments.run("fig2", scale=bench_scale), rounds=1, iterations=1
    )
    record_result(result)

    # Paper shape: SpikingLR costs a multiple of the baseline (Fig. 2a).
    assert result.scalars["max_latency_overhead"] > 1.5
    assert result.scalars["max_energy_overhead"] > 1.5
    # Paper shape: aggressive reduction degrades old-task accuracy (2b).
    assert result.scalars["accuracy_drop_from_reduction"] > 0.0
