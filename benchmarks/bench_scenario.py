"""Extension bench: the scenario-first run API (beyond the paper).

Runs the two new workload families opened by `repro.scenario` —
``domain-incremental`` (fixed classes, drifting input statistics) and
``blurry`` (overlapping class boundaries) — end-to-end through
``run_scenario`` and records their continual-learning metrics.  Runs at
ci scale regardless of REPRO_BENCH_SCALE (each is a full pre-train plus
a 2-step NCL stream).
"""

import numpy as np

from repro.eval.results import ExperimentResult, Series
from repro.scenario import run_scenario


def _record_scenario(record_result, result, experiment_id, title):
    report = ExperimentResult(experiment_id=experiment_id, title=title, scale="ci")
    steps = tuple(range(len(result.steps)))
    report.add_series(Series(
        name="old-acc", x=steps, y=result.old_accuracy_trajectory,
        x_label="step", y_label="top1",
    ))
    report.add_series(Series(
        name="new-acc", x=steps, y=result.new_accuracy_trajectory,
        x_label="step", y_label="top1",
    ))
    report.scalars["average_accuracy"] = result.average_accuracy
    report.scalars["forgetting"] = result.forgetting
    report.scalars["backward_transfer"] = result.backward_transfer
    record_result(report)


def test_scenario_domain_incremental(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_scenario("domain-incremental", "replay4ncl", scale="ci"),
        rounds=1,
        iterations=1,
    )
    _record_scenario(
        record_result, result, "ext_scenario_domain",
        "Extension: domain-incremental scenario (Replay4NCL)",
    )
    # The matrix is lower-triangular complete and the metrics coherent.
    assert result.accuracy_matrix.shape == (3, 3)
    assert np.isfinite(result.average_accuracy)
    # Replay must keep the clean domain alive while the drifted domains
    # are absorbed (margin wide: ci-scale accuracy quantum is 0.05).
    assert result.old_accuracy_trajectory[-1] > 0.4


def test_scenario_blurry_store_backed(benchmark, record_result, tmp_path):
    from repro.core import ReplaySpec

    result = benchmark.pedantic(
        lambda: run_scenario(
            "blurry", "replay4ncl", scale="ci",
            replay=ReplaySpec(store_dir=tmp_path / "fed", shard_samples=8),
        ),
        rounds=1,
        iterations=1,
    )
    _record_scenario(
        record_result, result, "ext_scenario_blurry",
        "Extension: blurry scenario, store-backed replay (Replay4NCL)",
    )
    assert result.store_root is not None
    assert result.old_accuracy_trajectory[-1] > 0.3
