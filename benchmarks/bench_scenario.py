"""Extension bench: the scenario-first run API (beyond the paper).

Runs the new workload families opened by `repro.scenario` —
``domain-incremental`` (fixed classes, drifting input statistics),
``blurry`` (overlapping class boundaries), and the task-IL/class-IL
regime pair (``task-incremental`` vs ``sequential`` on the same seed) —
end-to-end through ``run_scenario`` and records their
continual-learning metrics.  Runs at ci scale regardless of
REPRO_BENCH_SCALE (each is a full pre-train plus a 2-step NCL stream).
"""

import numpy as np

from repro.eval.results import ExperimentResult, Series
from repro.scenario import run_scenario


def _record_scenario(record_result, result, experiment_id, title):
    report = ExperimentResult(experiment_id=experiment_id, title=title, scale="ci")
    steps = tuple(range(len(result.steps)))
    report.add_series(Series(
        name="old-acc", x=steps, y=result.old_accuracy_trajectory,
        x_label="step", y_label="top1",
    ))
    report.add_series(Series(
        name="new-acc", x=steps, y=result.new_accuracy_trajectory,
        x_label="step", y_label="top1",
    ))
    report.scalars["average_accuracy"] = result.average_accuracy
    report.scalars["forgetting"] = result.forgetting
    report.scalars["backward_transfer"] = result.backward_transfer
    record_result(report)


def test_scenario_domain_incremental(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_scenario("domain-incremental", "replay4ncl", scale="ci"),
        rounds=1,
        iterations=1,
    )
    _record_scenario(
        record_result, result, "ext_scenario_domain",
        "Extension: domain-incremental scenario (Replay4NCL)",
    )
    # The matrix is lower-triangular complete and the metrics coherent.
    assert result.accuracy_matrix.shape == (3, 3)
    assert np.isfinite(result.average_accuracy)
    # Replay must keep the clean domain alive while the drifted domains
    # are absorbed (margin wide: ci-scale accuracy quantum is 0.05).
    assert result.old_accuracy_trajectory[-1] > 0.4


def test_scenario_blurry_store_backed(benchmark, record_result, tmp_path):
    from repro.core import ReplaySpec

    result = benchmark.pedantic(
        lambda: run_scenario(
            "blurry", "replay4ncl", scale="ci",
            replay=ReplaySpec(store_dir=tmp_path / "fed", shard_samples=8),
        ),
        rounds=1,
        iterations=1,
    )
    _record_scenario(
        record_result, result, "ext_scenario_blurry",
        "Extension: blurry scenario, store-backed replay (Replay4NCL)",
    )
    assert result.store_root is not None
    assert result.old_accuracy_trajectory[-1] > 0.3


def test_scenario_task_vs_class_incremental(benchmark, record_result):
    """The regime pair: same stream, task-IL (masked) vs class-IL eval.

    Training is bitwise-identical between the two runs (task ids are an
    evaluation device only), so the whole accuracy-matrix gap is the
    value of knowing the task id at inference.
    """

    def pair():
        task_il = run_scenario("task-incremental", "replay4ncl", scale="ci")
        class_il = run_scenario("sequential", "replay4ncl", scale="ci")
        return task_il, class_il

    task_il, class_il = benchmark.pedantic(pair, rounds=1, iterations=1)
    _record_scenario(
        record_result, task_il, "ext_scenario_task_il",
        "Extension: task-incremental scenario (per-task readout masks)",
    )
    report = ExperimentResult(
        experiment_id="ext_scenario_task_vs_class",
        title="Extension: task-IL vs class-IL on the same class stream",
        scale="ci",
    )
    report.scalars["task_il_average_accuracy"] = task_il.average_accuracy
    report.scalars["class_il_average_accuracy"] = class_il.average_accuracy
    report.scalars["task_id_advantage"] = (
        task_il.average_accuracy - class_il.average_accuracy
    )
    report.scalars["task_il_forgetting"] = task_il.forgetting
    report.scalars["class_il_forgetting"] = class_il.forgetting
    record_result(report)

    assert task_il.task_incremental and not class_il.task_incremental
    # Masking can only recover argmax errors, never create them: the
    # task-IL matrix dominates class-IL entry-wise at the same seed.
    lower = np.tril_indices(task_il.accuracy_matrix.shape[0])
    assert np.all(
        task_il.accuracy_matrix[lower] >= class_il.accuracy_matrix[lower]
    )
    assert task_il.average_accuracy >= class_il.average_accuracy
