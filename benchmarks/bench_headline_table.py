"""The paper's headline table (abstract / §V key results).

Paper values at the headline configuration: 90.43% vs 86.22% old-task
Top-1, 4.88x latency speed-up (incl. convergence effects), 20% latent
memory saving, 36.43% energy saving.
"""

from repro.eval import experiments


def test_headline_table(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(
        lambda: experiments.run("headline", scale=bench_scale), rounds=1, iterations=1
    )
    record_result(result)

    # Old knowledge preserved at a level comparable to the SOTA.
    assert result.scalars["replay4ncl_old_acc"] >= (
        result.scalars["spikinglr_old_acc"] - 0.15
    )
    # New task learned.
    assert result.scalars["replay4ncl_new_acc"] >= 0.5
    # Latency: a clear speed-up (paper: 4.88x incl. convergence; the
    # per-epoch component is ~2.3x).
    assert result.scalars["latency_speedup"] > 1.8
    # Latent memory: ~20% (paper: 20%-21.88%).
    assert 0.10 <= result.scalars["memory_saving"] <= 0.30
    # Energy: paper band 36.43%-56.7%.
    assert result.scalars["energy_saving"] > 0.3
