"""CI gate for the micro-kernel benchmarks.

Runs ``bench_micro_kernels.py`` (at ``REPRO_BENCH_SCALE=ci`` unless the
environment says otherwise) and fails when either

1. the fused LIF forward+backward kernel is less than ``--min-speedup``
   times faster than the per-step reference — this ratio is
   machine-independent, so it is the primary gate; or
2. any benchmark's mean time regressed beyond ``--tolerance`` times the
   committed baseline (``baseline_ci.json``) — absolute wall-clock
   varies across runners, so the margin is deliberately generous and
   only catches order-of-magnitude regressions (e.g. a kernel silently
   falling back to the per-step path).

Regenerate the baseline after an intentional performance change::

    python benchmarks/check_regression.py --update

Exit code 0 = pass, 1 = regression, 2 = harness failure.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
BENCH_FILE = BENCH_DIR / "bench_micro_kernels.py"
FLEET_BENCH_FILE = BENCH_DIR / "bench_fleet.py"
BASELINE_FILE = BENCH_DIR / "baseline_ci.json"
RESULTS_JSON = BENCH_DIR / "results" / "micro_kernels.json"
FLEET_RESULTS_JSON = BENCH_DIR / "results" / "fleet.json"

FLEET_BENCH = "test_fleet_serving"
#: extra_info keys gated for the fleet row: (key, direction) where
#: "min" means higher-is-better (throughput) and "max" the reverse.
FLEET_METRICS = (("p99_read_seconds", "max"), ("throughput_rps", "min"))

FUSED_BENCH = "test_fused_lif_forward_backward"
PER_STEP_BENCH = "test_per_step_lif_forward_backward"

TRACE_OVERHEAD_BENCH = "test_trace_disabled_overhead"
#: Disabled-path tracing calls (per fused fwd+bwd) must cost less than
#: this fraction of the fused kernel row itself.
TRACE_OVERHEAD_LIMIT = 0.02

#: Per-backend rows (test_backend_*[name]) skip when their backend is
#: unavailable on a runner, so they are optional in baseline checks.
BACKEND_ROW_PREFIX = "test_backend_"
#: Kernels with per-backend rows; the C gate needs a win on >= 1 of them.
BACKEND_KERNELS = ("lif_forward_backward", "readout_forward_backward")


def run_benchmarks(results_json: Path, bench_file: Path = BENCH_FILE) -> None:
    """Invoke pytest-benchmark on one bench file."""
    env = dict(os.environ)
    env.setdefault("REPRO_BENCH_SCALE", "ci")
    # Tracing exports would tax the timed paths; the fleet CI step
    # records its REPRO_TRACE artifact separately from this gate.
    env.pop("REPRO_TRACE", None)
    results_json.parent.mkdir(parents=True, exist_ok=True)
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        str(bench_file),
        "-q",
        "--benchmark-only",
        f"--benchmark-json={results_json}",
    ]
    completed = subprocess.run(cmd, env=env, cwd=BENCH_DIR.parent)
    if completed.returncode != 0:
        print(f"benchmark run failed (exit {completed.returncode})", file=sys.stderr)
        raise SystemExit(2)


def load_means(results_json: Path) -> dict[str, float]:
    """Benchmark name -> mean seconds from a pytest-benchmark JSON."""
    if not results_json.exists():
        print(
            f"results JSON not found: {results_json} "
            "(run without --skip-run to generate it)",
            file=sys.stderr,
        )
        raise SystemExit(2)
    payload = json.loads(results_json.read_text())
    means: dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        means[bench["name"]] = float(bench["stats"]["mean"])
    if not means:
        print(f"no benchmarks found in {results_json}", file=sys.stderr)
        raise SystemExit(2)
    return means


def load_extra_info(results_json: Path, name: str) -> dict:
    """``extra_info`` payload of one benchmark row (empty if absent)."""
    if not results_json.exists():
        return {}
    payload = json.loads(results_json.read_text())
    for bench in payload.get("benchmarks", []):
        if bench["name"] == name:
            return dict(bench.get("extra_info", {}))
    return {}


def check_fleet(
    means: dict[str, float], extra: dict, baseline: dict, tolerance: float
) -> list[str]:
    """Gate the fleet-serving row's p99 latency and request throughput.

    The wall-time mean rides through :func:`check_baseline` with every
    other row; this check covers the serving-quality numbers that live
    in ``extra_info``.  Same generous tolerance: absolute numbers vary
    across runners, the gate catches order-of-magnitude losses (e.g.
    batching silently degrading to one decode per tenant request).
    """
    failures: list[str] = []
    reference = baseline.get("fleet", {})
    if not reference:
        print("no fleet baseline section; fleet metric gate skipped")
        return failures
    if FLEET_BENCH not in means:
        failures.append(f"fleet row {FLEET_BENCH} missing from results")
        return failures
    for key, direction in FLEET_METRICS:
        base = reference.get(key)
        current = extra.get(key)
        if base is None:
            continue
        if current is None:
            failures.append(f"fleet metric {key} missing from extra_info")
            continue
        if direction == "max":  # lower is better (latency)
            ratio = current / base
            line = (
                f"fleet {key}: {current:.6f} vs baseline {base:.6f} "
                f"({ratio:.2f}x, limit {tolerance:.1f}x)"
            )
            bad = ratio > tolerance
        else:  # higher is better (throughput)
            ratio = base / current if current else float("inf")
            line = (
                f"fleet {key}: {current:.2f} vs baseline {base:.2f} "
                f"(slowdown {ratio:.2f}x, limit {tolerance:.1f}x)"
            )
            bad = ratio > tolerance
        print(f"{line} {'REGRESSED' if bad else 'ok'}")
        if bad:
            failures.append(f"fleet serving metric regressed: {line}")
    return failures


def check_speedup(means: dict[str, float], min_speedup: float) -> list[str]:
    failures: list[str] = []
    fused = means.get(FUSED_BENCH)
    per_step = means.get(PER_STEP_BENCH)
    if fused is None or per_step is None:
        failures.append(
            f"speedup pair missing from results: need {FUSED_BENCH} and {PER_STEP_BENCH}"
        )
        return failures
    speedup = per_step / fused
    line = (
        f"fused LIF fwd+bwd: {fused * 1e6:.1f} us, per-step: {per_step * 1e6:.1f} us "
        f"-> speedup {speedup:.2f}x (required >= {min_speedup:.2f}x)"
    )
    print(line)
    if speedup < min_speedup:
        failures.append(f"fused kernel speedup regressed: {line}")
    return failures


def check_backend_speedup(means: dict[str, float]) -> list[str]:
    """The C backend must beat numpy on at least one kernel.

    Skipped (not failed) when the C rows are absent — runners without a
    C compiler legitimately fall back to the reference backend.
    """
    failures: list[str] = []
    compared = wins = 0
    for kernel in BACKEND_KERNELS:
        reference = means.get(f"{BACKEND_ROW_PREFIX}{kernel}[numpy]")
        compiled = means.get(f"{BACKEND_ROW_PREFIX}{kernel}[c]")
        if reference is None or compiled is None:
            continue
        compared += 1
        ratio = reference / compiled
        print(
            f"C backend {kernel}: {compiled * 1e6:.1f} us vs numpy "
            f"{reference * 1e6:.1f} us -> {ratio:.2f}x"
        )
        if ratio > 1.0:
            wins += 1
    if compared == 0:
        print("C backend rows absent (backend unavailable here); gate skipped")
    elif wins == 0:
        failures.append(
            f"C backend beat numpy on 0 of {compared} kernels (expected >= 1)"
        )
    return failures


def check_trace_overhead(
    means: dict[str, float], limit: float = TRACE_OVERHEAD_LIMIT
) -> list[str]:
    """The disabled-tracing no-op path must stay below ``limit`` of the
    fused kernel's own mean — instrumentation may not tax the default
    (untraced) hot path measurably."""
    failures: list[str] = []
    overhead = means.get(TRACE_OVERHEAD_BENCH)
    fused = means.get(FUSED_BENCH)
    if overhead is None or fused is None:
        failures.append(
            f"trace overhead pair missing from results: need "
            f"{TRACE_OVERHEAD_BENCH} and {FUSED_BENCH}"
        )
        return failures
    fraction = overhead / fused
    line = (
        f"disabled tracing: {overhead * 1e9:.0f} ns of obs calls per fused "
        f"fwd+bwd ({fraction * 100:.3f}% of the {fused * 1e6:.1f} us kernel; "
        f"limit {limit * 100:.0f}%)"
    )
    print(line)
    if fraction > limit:
        failures.append(f"disabled-tracing overhead regressed: {line}")
    return failures


def check_baseline(
    means: dict[str, float], baseline: dict, tolerance: float
) -> list[str]:
    failures: list[str] = []
    for name, base_mean in sorted(baseline["benchmarks"].items()):
        current = means.get(name)
        if current is None:
            if name.startswith(BACKEND_ROW_PREFIX):
                # Optional row: the backend that produced the baseline
                # number is unavailable on this runner (skipped bench).
                print(f"{name}: skipped (backend unavailable on this runner)")
                continue
            failures.append(f"benchmark {name} present in baseline but not in results")
            continue
        ratio = current / base_mean
        status = "ok" if ratio <= tolerance else "REGRESSED"
        print(
            f"{name}: {current * 1e6:.1f} us vs baseline {base_mean * 1e6:.1f} us "
            f"({ratio:.2f}x, limit {tolerance:.1f}x) {status}"
        )
        if ratio > tolerance:
            failures.append(
                f"{name} regressed {ratio:.2f}x over baseline "
                f"({current * 1e6:.1f} us vs {base_mean * 1e6:.1f} us)"
            )
    return failures


def write_baseline(means: dict[str, float], fleet_extra: dict) -> None:
    payload = {
        "scale": os.environ.get("REPRO_BENCH_SCALE", "ci"),
        "note": (
            "Mean seconds per benchmark from a reference run of "
            "bench_micro_kernels.py and bench_fleet.py; regenerate with "
            "`python benchmarks/check_regression.py --update`."
        ),
        "benchmarks": {name: means[name] for name in sorted(means)},
    }
    fleet = {
        key: fleet_extra[key] for key, _ in FLEET_METRICS if key in fleet_extra
    }
    if fleet:
        payload["fleet"] = fleet
    BASELINE_FILE.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote baseline for {len(means)} benchmarks to {BASELINE_FILE}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="required fused-vs-per-step LIF speedup (default 3.0)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=4.0,
        help="allowed slowdown vs the committed baseline (default 4.0x; "
        "absolute timings vary widely across CI runners)",
    )
    parser.add_argument(
        "--skip-run",
        action="store_true",
        help="reuse an existing results JSON instead of re-running the bench",
    )
    parser.add_argument(
        "--results-json",
        type=Path,
        default=RESULTS_JSON,
        help=f"pytest-benchmark JSON path (default {RESULTS_JSON})",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite baseline_ci.json from this run instead of checking",
    )
    args = parser.parse_args(argv)

    if not args.skip_run:
        run_benchmarks(args.results_json)
        run_benchmarks(FLEET_RESULTS_JSON, FLEET_BENCH_FILE)
    means = load_means(args.results_json)
    means.update(load_means(FLEET_RESULTS_JSON))
    fleet_extra = load_extra_info(FLEET_RESULTS_JSON, FLEET_BENCH)

    if args.update:
        write_baseline(means, fleet_extra)
        return 0

    failures = check_speedup(means, args.min_speedup)
    failures += check_backend_speedup(means)
    failures += check_trace_overhead(means)
    if BASELINE_FILE.exists():
        baseline = json.loads(BASELINE_FILE.read_text())
        failures += check_baseline(means, baseline, args.tolerance)
        failures += check_fleet(means, fleet_extra, baseline, args.tolerance)
    else:
        print(f"warning: no baseline at {BASELINE_FILE}; speedup gate only")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall benchmark gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
