"""Paper Fig. 8: the timestep-optimization case study (Observations A-C).

Replay at 100% / 60% / 40% / 20% of the pre-training timesteps, without
parameter adjustments: accuracy holds down to ~40% and drops at 20%
(A, B), while latency falls monotonically with the timestep (C).
"""

from repro.eval import experiments


def test_fig8_timestep_sweep(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(
        lambda: experiments.run("fig8", scale=bench_scale), rounds=1, iterations=1
    )
    record_result(result)

    old_acc = result.get_series("final-old-acc").y
    latency = result.get_series("latency-normalized").y

    # Observation A: the most aggressive setting loses old-task accuracy.
    assert old_acc[-1] < old_acc[0]
    # Observation B: the 40% setting stays close to the full setting.
    assert old_acc[2] >= old_acc[0] - 0.05
    # Observation C: latency decreases monotonically with the timestep.
    assert all(a >= b for a, b in zip(latency, latency[1:]))
    assert latency[-1] < 0.5  # 20% timesteps cost well under half
