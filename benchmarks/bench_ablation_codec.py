"""Ablation: spike-codec choice for latent replay storage.

Compares the Fig. 7 subsampling codec against the lossless bitpack and
address-event codecs on real latent activations: storage bytes and spike
retention.  Shows where the paper's lossy choice pays and what a
lossless buffer would cost.
"""

import numpy as np

from repro.compression import compare_codecs
from repro.core.latent_replay import LatentReplayBuffer
from repro.eval import experiments
from repro.eval.results import ExperimentResult, Series


def test_codec_comparison_on_latent_data(benchmark, bench_scale, record_result):
    ctx = experiments.context(bench_scale)
    exp = ctx.preset.experiment
    replay = ctx.split.pretrain_train.sample_fraction(
        exp.ncl.replay_fraction, np.random.default_rng(exp.seed)
    )
    buffer = LatentReplayBuffer.generate(
        ctx.pretrained.network,
        replay,
        insertion_layer=exp.ncl.insertion_layer,
        timesteps=exp.pretrain.timesteps,
        compression_factor=1,
    )

    stats = benchmark.pedantic(
        lambda: compare_codecs(buffer.compressed, subsample_factor=2),
        rounds=1,
        iterations=1,
    )

    result = ExperimentResult(
        experiment_id="ablation_codec",
        title="Ablation: codec choice on latent activations",
        scale=ctx.preset.name,
    )
    names = tuple(s.codec for s in stats)
    result.add_series(Series(
        name="stored-bytes", x=names, y=tuple(float(s.stored_bytes) for s in stats),
        x_label="codec", y_label="bytes",
    ))
    result.add_series(Series(
        name="spike-retention", x=names, y=tuple(s.spike_retention for s in stats),
        x_label="codec", y_label="fraction",
    ))
    record_result(result)

    bitpack, aer, subsample = stats
    assert bitpack.spike_retention == 1.0 and aer.spike_retention == 1.0
    assert subsample.spike_retention < 1.0  # the Fig. 7 codec is lossy
    assert subsample.stored_bytes < bitpack.stored_bytes
