"""Paper Fig. 12: latent memory sizes across LR insertion layers.

SpikingLR stores ceil(T/2) frames per sample (Fig. 7 factor-2 codec at
T=100); Replay4NCL stores its reduced timestep count natively — the
paper's 20%-21.88% latent memory saving.
"""

from repro.eval import experiments


def test_fig12_latent_memory(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(
        lambda: experiments.run("fig12", scale=bench_scale), rounds=1, iterations=1
    )
    record_result(result)

    savings = result.get_series("memory-saving").y
    # Paper: savings of 20%-21.88% across layers (headers shift the
    # exact value slightly at small scales).
    assert all(0.10 <= s <= 0.30 for s in savings)

    # Later layers need less memory (smaller layer dimension).
    sota = result.get_series("spikinglr-memory").y
    assert all(a >= b for a, b in zip(sota, sota[1:]))
