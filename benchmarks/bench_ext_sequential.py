"""Extension bench: multi-step continual learning (beyond the paper).

Chains two Replay4NCL steps and verifies forgetting does not compound
catastrophically — the stress test for the paper's parameter
adjustments.  Runs at ci scale regardless of REPRO_BENCH_SCALE (two full
NCL runs plus a dedicated pre-training).
"""

from repro.core import Replay4NCL, make_sequential_splits, run_sequential
from repro.core.pipeline import pretrain
from repro.data.synthetic_shd import SyntheticSHD
from repro.data.tasks import make_class_incremental
from repro.eval.results import ExperimentResult, Series
from repro.eval.scale import get_scale


def test_sequential_two_steps(benchmark, record_result):
    preset = get_scale("ci")
    experiment = preset.experiment.replace(num_pretrain_classes=3)
    generator = SyntheticSHD(preset.shd, seed=experiment.seed)
    base_split = make_class_incremental(
        generator,
        experiment.samples_per_class,
        experiment.test_samples_per_class,
        num_pretrain_classes=3,
    )
    pretrained = pretrain(experiment, base_split)
    splits = make_sequential_splits(
        generator,
        experiment.samples_per_class,
        experiment.test_samples_per_class,
        base_classes=3,
        steps=2,
    )

    result = benchmark.pedantic(
        lambda: run_sequential(
            lambda k: Replay4NCL(experiment), pretrained.network, splits
        ),
        rounds=1,
        iterations=1,
    )

    report = ExperimentResult(
        experiment_id="ext_sequential",
        title="Extension: two sequential continual steps (Replay4NCL)",
        scale="ci",
    )
    steps = tuple(range(len(result.steps)))
    report.add_series(Series(
        name="old-acc", x=steps, y=result.old_accuracy_trajectory,
        x_label="step", y_label="top1",
    ))
    report.add_series(Series(
        name="new-acc", x=steps, y=result.new_accuracy_trajectory,
        x_label="step", y_label="top1",
    ))
    report.scalars["final_old_acc"] = result.old_accuracy_trajectory[-1]
    record_result(report)

    # Replay must keep old knowledge alive through both steps.
    assert result.old_accuracy_trajectory[-1] > 0.4
