"""Ablation: the adaptive threshold policy (§III-B / Alg. 1) on vs off.

Isolates the contribution of the per-neuron adaptive ``Vthr`` at the
paper's reduced timestep and at a more aggressive one.  The paper argues
adaptation compensates the information loss of fewer spikes; the effect
concentrates at aggressive timesteps, where silence is common.
"""

import pytest

from repro.core import Replay4NCL, run_method
from repro.eval import experiments
from repro.eval.results import ExperimentResult, Series


def test_adaptive_threshold_ablation(benchmark, bench_scale, record_result):
    ctx = experiments.context(bench_scale)
    exp = ctx.preset.experiment
    t_star = exp.ncl.timesteps
    t_aggr = max(t_star // 2, 2)

    def run_grid():
        rows = {}
        for timesteps in (t_star, t_aggr):
            for adaptive in (True, False):
                method = Replay4NCL(exp, timesteps=timesteps, adaptive_threshold=adaptive)
                rows[(timesteps, adaptive)] = run_method(
                    method, ctx.pretrained, ctx.split
                )
        return rows

    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    result = ExperimentResult(
        experiment_id="ablation_threshold",
        title="Ablation: adaptive threshold on/off at two timesteps",
        scale=ctx.preset.name,
    )
    labels = tuple(f"T{t}-{'adapt' if a else 'static'}" for (t, a) in rows)
    result.add_series(Series(
        name="old-acc", x=labels,
        y=tuple(r.final_old_accuracy for r in rows.values()),
        x_label="config", y_label="top1",
    ))
    result.add_series(Series(
        name="new-acc", x=labels,
        y=tuple(r.final_new_accuracy for r in rows.values()),
        x_label="config", y_label="top1",
    ))
    record_result(result)

    # Both variants must preserve old knowledge at the paper's T*.
    assert rows[(t_star, True)].final_old_accuracy > 0.5
    assert rows[(t_star, False)].final_old_accuracy > 0.5


def test_threshold_policy_lowers_barrier_when_silent():
    """Unit-style sanity: the Alg. 1 decay kicks in for silent neurons."""
    from repro.snn.threshold import PerNeuronAdaptiveThreshold
    import numpy as np

    ctrl = PerNeuronAdaptiveThreshold(num_neurons=4, timesteps=40, adjust_interval=1)
    counts = np.array([5.0, 0.0, 0.0, 1.0])
    value = ctrl.step(3, counts, counts * 3)
    assert value[1] == pytest.approx(1.0 / (1.0 + np.exp(-0.001 * 3)))
    assert value[0] > value[1]  # active neuron follows the timing rule
