"""Ablations of substrate design choices DESIGN.md calls out.

1. Surrogate-gradient family (fast-sigmoid vs atan vs boxcar vs STE) —
   pre-training quality under each pseudo-derivative.
2. Neuron model (plain LIF vs current-based CuBa LIF).
3. Raw-input rehearsal vs latent replay — the memory argument for
   replaying activations instead of inputs.

These run at a small scale regardless of REPRO_BENCH_SCALE (they sweep
whole pre-training runs).
"""

import numpy as np

from repro.autograd.surrogate import (
    atan_surrogate,
    boxcar_surrogate,
    fast_sigmoid_surrogate,
    straight_through_surrogate,
)
from repro.core import RawInputReplay, Replay4NCL, run_method
from repro.core.pipeline import pretrain
from repro.data.synthetic_shd import SyntheticSHD
from repro.data.tasks import make_class_incremental
from repro.eval import experiments
from repro.eval.results import ExperimentResult, Series
from repro.eval.scale import get_scale
from repro.snn.neurons import LIFParameters


def _ci_setup():
    preset = get_scale("ci")
    generator = SyntheticSHD(preset.shd, seed=preset.experiment.seed)
    split = make_class_incremental(
        generator,
        preset.experiment.samples_per_class,
        preset.experiment.test_samples_per_class,
        num_pretrain_classes=preset.experiment.num_pretrain_classes,
    )
    return preset, split


def test_surrogate_family_ablation(benchmark, record_result):
    preset, split = _ci_setup()
    families = {
        "fast-sigmoid": fast_sigmoid_surrogate(25.0),
        "atan": atan_surrogate(2.0),
        "boxcar": boxcar_surrogate(0.5),
        "straight-through": straight_through_surrogate(),
    }

    def run_sweep():
        from repro.snn.network import SpikingNetwork
        from repro.training import Adam, Trainer, TrainerConfig, top1_accuracy

        accs = {}
        for name, family in families.items():
            # Train from scratch under this surrogate family.
            params = LIFParameters(
                beta=preset.experiment.network.beta,
                threshold=preset.experiment.network.threshold,
                reset_mode=preset.experiment.network.reset_mode,
                surrogate=family,
            )
            net = SpikingNetwork(preset.experiment.network, seed=0)
            for layer in net.hidden_layers:
                layer.params = params
            inputs = split.pretrain_train.to_dense(preset.experiment.pretrain.timesteps)
            trainer = Trainer(
                net,
                Adam(net.trainable_parameters(), preset.experiment.pretrain.learning_rate),
                TrainerConfig(
                    epochs=preset.experiment.pretrain.epochs,
                    batch_size=preset.experiment.pretrain.batch_size,
                ),
                rng=np.random.default_rng(0),
            )
            trainer.fit(inputs, split.pretrain_train.labels)
            test = split.pretrain_test.to_dense(preset.experiment.pretrain.timesteps)
            accs[name] = top1_accuracy(net.predict(test), split.pretrain_test.labels)
        return accs

    accs = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    result = ExperimentResult(
        experiment_id="ablation_surrogate",
        title="Ablation: surrogate-gradient family (pre-training accuracy)",
        scale="ci",
    )
    result.add_series(Series(
        name="pretrain-acc", x=tuple(accs), y=tuple(accs.values()),
        x_label="surrogate", y_label="top1",
    ))
    record_result(result)

    # The paper's fast-sigmoid choice must train competitively.
    assert accs["fast-sigmoid"] >= max(accs.values()) - 0.25
    assert accs["fast-sigmoid"] > 0.5


def test_neuron_model_ablation(benchmark, record_result):
    preset, split = _ci_setup()

    def run_pair():
        accs = {}
        for name, alpha in (("lif", None), ("cuba", 0.7)):
            config = preset.experiment.replace(
                network=preset.experiment.network.replace(synapse_alpha=alpha)
            )
            accs[name] = pretrain(config, split).test_accuracy
        return accs

    accs = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    result = ExperimentResult(
        experiment_id="ablation_neuron_model",
        title="Ablation: LIF vs CuBa LIF (pre-training accuracy)",
        scale="ci",
    )
    result.add_series(Series(
        name="pretrain-acc", x=tuple(accs), y=tuple(accs.values()),
        x_label="neuron model", y_label="top1",
    ))
    record_result(result)
    assert accs["lif"] > 0.5  # the paper's model must train


def test_raw_vs_latent_replay_memory(benchmark, bench_scale, record_result):
    ctx = experiments.context(bench_scale)
    exp = ctx.preset.experiment

    def run_pair():
        raw = run_method(RawInputReplay(exp), ctx.pretrained, ctx.split)
        latent = run_method(Replay4NCL(exp), ctx.pretrained, ctx.split)
        return raw, latent

    raw, latent = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    result = ExperimentResult(
        experiment_id="ablation_raw_vs_latent",
        title="Ablation: raw-input rehearsal vs latent replay",
        scale=ctx.preset.name,
    )
    result.add_series(Series(
        name="latent-bytes", x=("raw-input", "replay4ncl"),
        y=(float(raw.latent_storage_bytes), float(latent.latent_storage_bytes)),
        x_label="method", y_label="bytes",
    ))
    result.add_series(Series(
        name="old-acc", x=("raw-input", "replay4ncl"),
        y=(raw.final_old_accuracy, latent.final_old_accuracy),
        x_label="method", y_label="top1",
    ))
    record_result(result)

    # Latent replay's storage must be a small fraction of raw rehearsal.
    assert latent.latent_storage_bytes < raw.latent_storage_bytes / 2
