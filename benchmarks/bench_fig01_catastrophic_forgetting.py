"""Paper Fig. 1(a): catastrophic forgetting of the unprotected baseline.

The baseline network (no NCL capability) fine-tunes on the new class;
old-task Top-1 accuracy collapses while the new task is learned.
"""

from repro.eval import experiments


def test_fig1a_catastrophic_forgetting(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(
        lambda: experiments.run("fig1a", scale=bench_scale), rounds=1, iterations=1
    )
    record_result(result)

    # Paper shape: the accuracy for old knowledge is significantly
    # dropped as the network learns new knowledge.
    assert result.scalars["accuracy_drop"] > 0.2
    new_curve = result.get_series("new-task").y
    assert new_curve[-1] >= 0.75  # the new task is actually learned
