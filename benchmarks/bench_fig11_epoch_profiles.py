"""Paper Fig. 11: epoch profiles at the headline LR insertion layer.

(a) Old-task accuracy vs epoch (marker 4: 90.43% vs 86.22% in the
paper); (b) cumulative processing time at epoch checkpoints normalized
to SOTA at the first checkpoint (marker 5 / headline 4.88x incl.
convergence); (c) cumulative energy (marker 6 / headline 36.43%).
"""

from repro.eval import experiments


def test_fig11_epoch_profiles(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(
        lambda: experiments.run("fig11", scale=bench_scale), rounds=1, iterations=1
    )
    record_result(result)

    # Marker 4: comparable old-task accuracy at reduced timesteps.
    assert result.scalars["replay4ncl_final_old_acc"] >= (
        result.scalars["spikinglr_final_old_acc"] - 0.15
    )
    # Marker 5: every Replay4NCL checkpoint is cheaper than SpikingLR's.
    sota_lat = result.get_series("spikinglr-cumulative-latency").y
    ours_lat = result.get_series("replay4ncl-cumulative-latency").y
    for sota, ours in zip(sota_lat, ours_lat):
        assert ours < sota
    assert result.scalars["per_epoch_latency_speedup"] > 1.8
    # Marker 6: energy saving in the paper's band.
    assert result.scalars["energy_saving"] > 0.3
